package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// This file implements multi-client workload specs: several client
// cohorts with distinct arrival processes, service-size distributions,
// SLO classes, and temporal patterns sharing one application. Each
// client compiles to an independent seeded substream
// (rng.Split("client:<name>")) and the cohorts merge through the
// ordinary arrival injection path, so a single-client spec degenerates
// to — and stays bit-identical with — the equivalent single-source
// workload.

// Arrival process kinds accepted by ArrivalSpec.Process.
const (
	ArrivalPoisson = "poisson"  // memoryless renewal (cv = 1)
	ArrivalGammaCV = "gamma-cv" // gamma renewal shaped by a target cv
	ArrivalWeibull = "weibull"  // Weibull renewal shaped by a shape parameter
	ArrivalMMPP    = "mmpp"     // two-state Markov-modulated Poisson process
)

// ArrivalSpec declares one client's arrival process. Fields beyond
// Process apply only to the kinds that name them; setting a parameter a
// process does not use is a validation error (typos fail loudly).
type ArrivalSpec struct {
	Process string `json:"process"`
	// CV is the interarrival coefficient of variation for "gamma-cv"
	// (cv > 1 bursty, cv < 1 regular).
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull shape for "weibull" interarrivals.
	Shape float64 `json:"shape,omitempty"`
	// Peak is the burst-state rate multiplier (≥ 1) for "mmpp"; the
	// low-state rate is derived so the stationary mean stays at the
	// client's share of the aggregate rate.
	Peak float64 `json:"peak,omitempty"`
	// Sojourns are the mean dwell times (s) of the normal and burst
	// states for "mmpp".
	Sojourns [2]float64 `json:"sojourns,omitzero"`
}

// validate checks the arrival process parameters; fraction-independent.
func (a ArrivalSpec) validate() error {
	noExtra := func(process string, vals ...float64) error {
		for _, v := range vals {
			if v != 0 {
				return fmt.Errorf("arrival process %q does not take the supplied parameter set %+v", process, a)
			}
		}
		return nil
	}
	switch a.Process {
	case ArrivalPoisson:
		return noExtra(a.Process, a.CV, a.Shape, a.Peak, a.Sojourns[0], a.Sojourns[1])
	case ArrivalGammaCV:
		if a.CV <= 0 {
			return fmt.Errorf("arrival process %q needs cv > 0, got %v", a.Process, a.CV)
		}
		return noExtra(a.Process, a.Shape, a.Peak, a.Sojourns[0], a.Sojourns[1])
	case ArrivalWeibull:
		if a.Shape <= 0 {
			return fmt.Errorf("arrival process %q needs shape > 0, got %v", a.Process, a.Shape)
		}
		return noExtra(a.Process, a.CV, a.Peak, a.Sojourns[0], a.Sojourns[1])
	case ArrivalMMPP:
		if err := noExtra(a.Process, a.CV, a.Shape); err != nil {
			return err
		}
		if a.Peak < 1 {
			return fmt.Errorf("arrival process %q needs peak ≥ 1, got %v", a.Process, a.Peak)
		}
		if a.Sojourns[0] <= 0 || a.Sojourns[1] <= 0 {
			return fmt.Errorf("arrival process %q needs positive sojourns, got %v", a.Process, a.Sojourns)
		}
		if low := a.mmppLowFactor(); low < 0 {
			return fmt.Errorf("arrival process %q peak %v too high for sojourns %v (low-state rate would be negative)",
				a.Process, a.Peak, a.Sojourns)
		}
		return nil
	case "":
		return fmt.Errorf("missing arrival process (want one of %s)", strings.Join(ArrivalProcesses(), ", "))
	default:
		return fmt.Errorf("unknown arrival process %q (want one of %s)", a.Process, strings.Join(ArrivalProcesses(), ", "))
	}
}

// mmppLowFactor returns the normal-state rate multiplier that keeps the
// MMPP's stationary mean at 1 given the burst-state multiplier Peak.
func (a ArrivalSpec) mmppLowFactor() float64 {
	s0, s1 := a.Sojourns[0], a.Sojourns[1]
	return (s0 + s1 - a.Peak*s1) / s0
}

// ArrivalProcesses returns the supported arrival process kinds, sorted.
func ArrivalProcesses() []string {
	return []string{ArrivalGammaCV, ArrivalMMPP, ArrivalPoisson, ArrivalWeibull}
}

// SizeSpec declares one client's service-size distribution. Mean is the
// mean service seconds; the remaining fields apply only to the kinds
// that name them.
type SizeSpec struct {
	// Dist is one of "jitter", "deterministic", "exponential",
	// "uniform", "lognormal", "weibull", "pareto".
	Dist string  `json:"dist"`
	Mean float64 `json:"mean"`
	// Jitter (dist "jitter") inflates Mean by U(0, jitter) — the
	// paper's service-time idiom, service = mean · (1 + U(0, j)).
	Jitter float64 `json:"jitter,omitempty"`
	// CV shapes "uniform" (half-width mean·√3·cv) and "lognormal".
	CV float64 `json:"cv,omitempty"`
	// Shape is the Weibull shape for dist "weibull" (scale derived
	// from Mean).
	Shape float64 `json:"shape,omitempty"`
	// Alpha is the Pareto tail index for dist "pareto" (α > 1; xm
	// derived from Mean).
	Alpha float64 `json:"alpha,omitempty"`
}

// sampler compiles the size spec into a Sampler; call validate first.
func (z SizeSpec) sampler() stats.Sampler {
	switch z.Dist {
	case "jitter":
		return jitterService(z.Mean, z.Jitter)
	case "deterministic":
		return stats.Deterministic{Value: z.Mean}
	case "exponential":
		return stats.Exponential{Rate: 1 / z.Mean}
	case "uniform":
		h := z.Mean * math.Sqrt(3) * z.CV
		return stats.Uniform{Min: z.Mean - h, Max: z.Mean + h}
	case "lognormal":
		sigma2 := math.Log(1 + z.CV*z.CV)
		return stats.LogNormal{Mu: math.Log(z.Mean) - sigma2/2, Sigma: math.Sqrt(sigma2)}
	case "weibull":
		return stats.Weibull{Shape: z.Shape, Scale: z.Mean / math.Gamma(1+1/z.Shape)}
	case "pareto":
		return stats.Pareto{Xm: z.Mean * (z.Alpha - 1) / z.Alpha, Alpha: z.Alpha}
	}
	panic("workload: size spec not validated: " + z.Dist)
}

func (z SizeSpec) validate() error {
	if z.Mean <= 0 {
		return fmt.Errorf("size dist %q needs mean > 0, got %v", z.Dist, z.Mean)
	}
	switch z.Dist {
	case "jitter":
		if z.Jitter < 0 {
			return fmt.Errorf("size dist %q needs jitter ≥ 0, got %v", z.Dist, z.Jitter)
		}
	case "deterministic", "exponential":
		// Mean alone.
	case "uniform":
		if z.CV < 0 || z.CV > 1/math.Sqrt(3) {
			return fmt.Errorf("size dist %q needs 0 ≤ cv ≤ 1/√3 to stay non-negative, got %v", z.Dist, z.CV)
		}
	case "lognormal":
		if z.CV <= 0 {
			return fmt.Errorf("size dist %q needs cv > 0, got %v", z.Dist, z.CV)
		}
	case "weibull":
		if z.Shape <= 0 {
			return fmt.Errorf("size dist %q needs shape > 0, got %v", z.Dist, z.Shape)
		}
	case "pareto":
		if z.Alpha <= 1 {
			return fmt.Errorf("size dist %q needs alpha > 1 for a finite mean, got %v", z.Dist, z.Alpha)
		}
	case "":
		return fmt.Errorf("missing size dist")
	default:
		return fmt.Errorf("unknown size dist %q", z.Dist)
	}
	return nil
}

// Pattern kinds accepted by PatternSpec.Kind; an empty kind is the
// constant pattern (multiplier 1 everywhere).
const (
	PatternRamp        = "ramp"
	PatternBurst       = "burst"
	PatternMultiPeriod = "multi-period"
)

// PatternSpec shapes a client's rate over time as a multiplicative
// factor on its base rate. The zero value is the constant pattern.
type PatternSpec struct {
	Kind string `json:"kind,omitempty"`
	// Ramp: the multiplier moves linearly from From to To over
	// [Start, End] seconds, holding From before and To after.
	From  float64 `json:"from,omitempty"`
	To    float64 `json:"to,omitempty"`
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	// Burst: every Period seconds the multiplier is Factor for
	// Duration seconds, 1 otherwise.
	Factor   float64 `json:"factor,omitempty"`
	Period   float64 `json:"period,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	// Multi-period: multiplier 1 + Σ amps[i]·sin(2πt/periods[i] +
	// phases[i]); Σ|amps| must stay below 1 so the rate stays positive.
	Periods []float64 `json:"periods,omitempty"`
	Amps    []float64 `json:"amps,omitempty"`
	Phases  []float64 `json:"phases,omitempty"`
}

// IsZero reports the constant pattern (used by json omitzero).
func (p PatternSpec) IsZero() bool {
	return p.Kind == "" && p.From == 0 && p.To == 0 && p.Start == 0 && p.End == 0 &&
		p.Factor == 0 && p.Period == 0 && p.Duration == 0 &&
		len(p.Periods) == 0 && len(p.Amps) == 0 && len(p.Phases) == 0
}

func (p PatternSpec) validate() error {
	switch p.Kind {
	case "":
		if !p.IsZero() {
			return fmt.Errorf("constant pattern takes no parameters, got %+v", p)
		}
	case PatternRamp:
		if p.From <= 0 || p.To <= 0 {
			return fmt.Errorf("ramp pattern needs positive from/to factors, got %v→%v", p.From, p.To)
		}
		if p.End <= p.Start || p.Start < 0 {
			return fmt.Errorf("ramp pattern needs 0 ≤ start < end, got [%v, %v]", p.Start, p.End)
		}
	case PatternBurst:
		if p.Factor <= 0 {
			return fmt.Errorf("burst pattern needs factor > 0, got %v", p.Factor)
		}
		if p.Period <= 0 || p.Duration <= 0 || p.Duration > p.Period {
			return fmt.Errorf("burst pattern needs 0 < duration ≤ period, got %v/%v", p.Duration, p.Period)
		}
	case PatternMultiPeriod:
		if len(p.Periods) == 0 || len(p.Periods) != len(p.Amps) {
			return fmt.Errorf("multi-period pattern needs matched periods/amps, got %d/%d", len(p.Periods), len(p.Amps))
		}
		if len(p.Phases) != 0 && len(p.Phases) != len(p.Periods) {
			return fmt.Errorf("multi-period pattern phases must match periods, got %d/%d", len(p.Phases), len(p.Periods))
		}
		var sum float64
		for i, per := range p.Periods {
			if per <= 0 {
				return fmt.Errorf("multi-period pattern period %d must be positive, got %v", i, per)
			}
			sum += math.Abs(p.Amps[i])
		}
		if sum >= 1 {
			return fmt.Errorf("multi-period pattern Σ|amps| = %v must stay below 1 so the rate stays positive", sum)
		}
	default:
		return fmt.Errorf("unknown pattern kind %q (want ramp, burst, or multi-period)", p.Kind)
	}
	return nil
}

// Multiplier evaluates the pattern's rate factor at time t. The
// validated patterns are strictly positive everywhere.
func (p PatternSpec) Multiplier(t float64) float64 {
	switch p.Kind {
	case PatternRamp:
		if t <= p.Start {
			return p.From
		}
		if t >= p.End {
			return p.To
		}
		return p.From + (p.To-p.From)*(t-p.Start)/(p.End-p.Start)
	case PatternBurst:
		if math.Mod(t, p.Period) < p.Duration {
			return p.Factor
		}
		return 1
	case PatternMultiPeriod:
		m := 1.0
		for i, per := range p.Periods {
			phase := 0.0
			if len(p.Phases) > 0 {
				phase = p.Phases[i]
			}
			m += p.Amps[i] * math.Sin(2*math.Pi*t/per+phase)
		}
		return m
	}
	return 1
}

// ClientSpec declares one client cohort of a multi-client workload.
type ClientSpec struct {
	Name string `json:"name"`
	// RateFraction is this client's share of the aggregate arrival
	// rate; fractions must be positive and sum to 1.
	RateFraction float64 `json:"rate_fraction"`
	// SLOClass groups this client's results in per-class report rows
	// ("interactive", "batch", ...); purely a reporting label.
	SLOClass string `json:"slo_class,omitempty"`
	// Class is the numeric priority/SLO class stamped on every request
	// this client emits (0 = lowest, the default). Unlike SLOClass it is
	// behavioral: SLA scheduling and degraded-mode shedding key off it.
	Class   int         `json:"class,omitempty"`
	Arrival ArrivalSpec `json:"arrival"`
	Size    SizeSpec    `json:"size"`
	Pattern PatternSpec `json:"pattern,omitzero"`
}

func (c ClientSpec) validate() error {
	if c.Name == "" {
		return fmt.Errorf("client missing name")
	}
	if c.RateFraction <= 0 {
		return fmt.Errorf("client %q needs rate_fraction > 0, got %v", c.Name, c.RateFraction)
	}
	if c.Class < 0 {
		return fmt.Errorf("client %q needs class >= 0, got %d", c.Name, c.Class)
	}
	if err := c.Arrival.validate(); err != nil {
		return fmt.Errorf("client %q: %w", c.Name, err)
	}
	if err := c.Size.validate(); err != nil {
		return fmt.Errorf("client %q: %w", c.Name, err)
	}
	if err := c.Pattern.validate(); err != nil {
		return fmt.Errorf("client %q: %w", c.Name, err)
	}
	if c.Arrival.Process == ArrivalMMPP && !c.Pattern.IsZero() {
		return fmt.Errorf("client %q: mmpp arrivals are self-modulating and take no temporal pattern", c.Name)
	}
	return nil
}

// ValidateClients checks a client set as a whole: every client valid,
// unique names (the error carries the sorted duplicate list), and rate
// fractions summing to 1.
func ValidateClients(clients []ClientSpec) error {
	if len(clients) == 0 {
		return fmt.Errorf("multi workload needs at least one client")
	}
	seen := map[string]int{}
	var dups []string
	var sum float64
	for _, c := range clients {
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name]++; seen[c.Name] == 2 {
			dups = append(dups, c.Name)
		}
		sum += c.RateFraction
	}
	if len(dups) > 0 {
		sort.Strings(dups)
		return fmt.Errorf("duplicate client names: %s (client names must be unique)", strings.Join(dups, ", "))
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("client rate fractions sum to %v, want 1", sum)
	}
	return nil
}

// ClientInfos extracts the name/SLO-class table of a client set in spec
// order.
func ClientInfos(clients []ClientSpec) []ClientInfo {
	infos := make([]ClientInfo, len(clients))
	for i, c := range clients {
		infos[i] = ClientInfo{Name: c.Name, SLOClass: c.SLOClass}
	}
	return infos
}

// RenewalSource is a renewal arrival process: interarrival gaps are
// drawn from a unit-mean distribution and divided by the current rate,
// so the mean rate tracks Rate · Modulate(t) while the gap shape (and
// its coefficient of variation) is free. With an exponential unit gap
// it is exactly a Poisson process; gamma or Weibull gaps give burstier
// or more regular streams at the same mean.
type RenewalSource struct {
	Rate     float64                 // base mean arrival rate (req/s)
	Gap      stats.Sampler           // unit-mean interarrival shape
	Modulate func(t float64) float64 // rate multiplier over time; nil = 1
	Service  stats.Sampler
	Horizon  float64 // stop generating after this time (0 = never)
	// Label prefixes the RNG substream names ("<label>/arrivals",
	// "<label>/service"); it defaults to "renewal". A RenewalSource
	// labeled "poisson" with an exponential unit gap draws the exact
	// stream of a PoissonSource at the same rate.
	Label string

	ids counter
}

// MeanRate returns Rate scaled by the pattern multiplier at t.
func (rs *RenewalSource) MeanRate(t float64) float64 {
	if rs.Modulate == nil {
		return rs.Rate
	}
	return rs.Rate * rs.Modulate(t)
}

// Start schedules the renewal chain. The gap drawn at time t is
// X/rate(t) with X the unit-mean shape variate — the standard
// rate-rescaling of a renewal process, exact for constant patterns and
// a first-order approximation across pattern boundaries.
func (rs *RenewalSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	if rs.Rate <= 0 {
		return
	}
	label := rs.Label
	if label == "" {
		label = "renewal"
	}
	//vmprov:allow splitkey -- per-client labels; unique because client names are validated unique
	arr := r.Split(label + "/arrivals")
	//vmprov:allow splitkey -- per-client labels; unique because client names are validated unique
	svc := r.Split(label + "/service")
	gap := func() float64 {
		rate := rs.MeanRate(s.Now())
		if rate <= 0 {
			panic("workload: renewal source rate vanished (patterns must stay positive)")
		}
		return rs.Gap.Sample(arr) / rate
	}
	var next func()
	next = func() {
		now := s.Now()
		if rs.Horizon > 0 && now >= rs.Horizon {
			return
		}
		emit(Request{ID: rs.ids.next(), Arrival: now, Service: rs.Service.Sample(svc)})
		s.Schedule(gap(), next)
	}
	s.Schedule(gap(), next)
}

// Snapshot implements Rewindable; the renewal chain's only mutable state
// outside the kernel and RNG tree is the ID counter.
func (rs *RenewalSource) Snapshot(store any) any { return snapshotCounter(store, rs.ids) }

// Restore implements Rewindable.
func (rs *RenewalSource) Restore(store any) { rs.ids = store.(*counterSnap).ids }

// compiledClient pairs a client's identity with its fresh per-replication
// source.
type compiledClient struct {
	info  ClientInfo
	class int
	src   Source
}

// MultiSource merges several client cohorts into one arrival stream.
// Each client owns an independent substream derived from the
// replication seed as Split("client:<name>"), so adding, removing, or
// reordering clients never perturbs another client's draws. A
// single-client source passes the parent stream through unsplit, which
// keeps one-client specs bit-identical to the equivalent single-source
// workload.
type MultiSource struct {
	clients []compiledClient
}

// NewMultiSource validates the client set and compiles a fresh source
// for one replication. aggregate is the total mean arrival rate split
// across clients by their rate fractions.
func NewMultiSource(aggregate float64, clients []ClientSpec) (*MultiSource, error) {
	if aggregate <= 0 {
		return nil, fmt.Errorf("multi workload needs aggregate_rate > 0, got %v", aggregate)
	}
	if err := ValidateClients(clients); err != nil {
		return nil, err
	}
	ms := &MultiSource{clients: make([]compiledClient, 0, len(clients))}
	for _, c := range clients {
		rate := aggregate * c.RateFraction
		service := c.Size.sampler()
		var src Source
		switch c.Arrival.Process {
		case ArrivalPoisson:
			src = &RenewalSource{
				Rate: rate, Gap: stats.Exponential{Rate: 1},
				Modulate: c.Pattern.Multiplier, Service: service, Label: "poisson",
			}
		case ArrivalGammaCV:
			src = &RenewalSource{
				Rate: rate, Gap: stats.UnitMeanGamma(c.Arrival.CV),
				Modulate: c.Pattern.Multiplier, Service: service, Label: ArrivalGammaCV,
			}
		case ArrivalWeibull:
			k := c.Arrival.Shape
			src = &RenewalSource{
				Rate: rate, Gap: stats.Weibull{Shape: k, Scale: 1 / math.Gamma(1+1/k)},
				Modulate: c.Pattern.Multiplier, Service: service, Label: ArrivalWeibull,
			}
		case ArrivalMMPP:
			src = &MMPPSource{
				Rates:    [2]float64{rate * c.Arrival.mmppLowFactor(), rate * c.Arrival.Peak},
				Sojourns: c.Arrival.Sojourns,
				Service:  service,
			}
		}
		ms.clients = append(ms.clients, compiledClient{
			info:  ClientInfo{Name: c.Name, SLOClass: c.SLOClass},
			class: c.Class,
			src:   src,
		})
	}
	return ms, nil
}

// Clients returns the client identity table in spec order.
func (m *MultiSource) Clients() []ClientInfo {
	infos := make([]ClientInfo, len(m.clients))
	for i, c := range m.clients {
		infos[i] = c.info
	}
	return infos
}

// MeanRate sums the clients' analytic mean rates at t.
func (m *MultiSource) MeanRate(t float64) float64 {
	var sum float64
	for _, c := range m.clients {
		sum += c.src.MeanRate(t)
	}
	return sum
}

// Start launches every client's arrival chain on the shared kernel; the
// cohorts interleave by event time through the ordinary injection path.
// Every emitted request is tagged with its client's name.
func (m *MultiSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	single := len(m.clients) == 1
	for i := range m.clients {
		c := &m.clients[i]
		cr := r
		if !single {
			//vmprov:allow splitkey -- per-client substreams; unique because client names are validated unique
			cr = r.Split("client:" + c.info.Name)
		}
		name, class := c.info.Name, c.class
		c.src.Start(s, cr, func(q Request) {
			q.Client = name
			q.Class = class
			emit(q)
		})
	}
}

// multiSnap holds the per-client stores of a multi-source snapshot.
type multiSnap struct{ stores []any }

// Snapshot implements Rewindable by delegating to each client's source.
func (m *MultiSource) Snapshot(store any) any {
	sn, _ := store.(*multiSnap)
	if sn == nil {
		sn = &multiSnap{stores: make([]any, len(m.clients))}
	}
	for i := range m.clients {
		sn.stores[i] = m.clients[i].src.(Rewindable).Snapshot(sn.stores[i])
	}
	return sn
}

// Restore implements Rewindable.
func (m *MultiSource) Restore(store any) {
	sn := store.(*multiSnap)
	for i := range m.clients {
		m.clients[i].src.(Rewindable).Restore(sn.stores[i])
	}
}

// MultiParams parameterize the "multi" workload kind: an aggregate
// arrival rate fanned out over client cohorts, observed by a window
// analyzer (the spec carries no closed-form model).
type MultiParams struct {
	AggregateRate float64      `json:"aggregate_rate"`
	Clients       []ClientSpec `json:"clients"`
	Window        WindowParams `json:"window,omitzero"`
}

func init() {
	Register("multi", func(raw json.RawMessage) (*Builder, error) {
		var p MultiParams
		if err := DecodeParams(raw, &p); err != nil {
			return nil, err
		}
		// Probe-compile once so spec errors surface at parse time, not
		// mid-replication.
		probe, err := NewMultiSource(p.AggregateRate, p.Clients)
		if err != nil {
			return nil, err
		}
		return &Builder{
			NewSource: func() Source {
				ms, err := NewMultiSource(p.AggregateRate, p.Clients)
				if err != nil {
					panic(err) // validated above
				}
				return ms
			},
			NewAnalyzer: func(Source, float64) Analyzer { return p.Window.analyzer() },
			Clients:     probe.Clients(),
		}, nil
	})
}
