package workload

import (
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// SciAnalyzer reproduces the paper's scientific-workload analyzer
// (Section V-B2). For peak time it estimates the arrival rate from the
// modes of the model's Weibull components — tasks-per-job mode over the
// interarrival mode — inflated by PeakFactor (paper: 1.2, "estimated
// number of tasks is increased by 20%"). For off-peak time it uses the
// mode of the jobs-per-period distribution times the task mode, divided by
// the period length and multiplied by OffPeakFactor (paper: 2.6).
type SciAnalyzer struct {
	Model         *Scientific
	PeakFactor    float64 // safety inflation of the peak estimate (paper: 1.2)
	OffPeakFactor float64 // safety inflation of the off-peak estimate (paper: 2.6)
	Horizon       float64 // alert schedule bound; zero means one day
}

// NewSciAnalyzer returns the analyzer with the paper's safety factors.
func NewSciAnalyzer(m *Scientific) *SciAnalyzer {
	return &SciAnalyzer{Model: m, PeakFactor: 1.2, OffPeakFactor: 2.6}
}

// PeakEstimate returns the predicted task arrival rate during peak hours.
func (a *SciAnalyzer) PeakEstimate() float64 {
	interMode := a.Model.Interarrival.Mode() // paper: 7.379 s
	sizeMode := a.Model.Size.Mode()          // paper: 1.309 tasks
	return a.PeakFactor * a.Model.Scale * sizeMode / interMode
}

// OffPeakEstimate returns the predicted task arrival rate off peak.
func (a *SciAnalyzer) OffPeakEstimate() float64 {
	jobsMode := a.Model.OffPeakJobs.Mode() // paper: 15.298 jobs / 30 min
	sizeMode := a.Model.Size.Mode()
	return a.OffPeakFactor * a.Model.Scale * jobsMode * sizeMode / a.Model.OffPeakPeriod
}

// Start emits the off-peak estimate at t=0 and alternates peak/off-peak
// alerts at the window boundaries of each simulated day.
func (a *SciAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = Day
	}
	alert(a.OffPeakEstimate())
	st := &sciAlertState{a: a, alert: alert}
	for day := 0; float64(day)*Day < horizon; day++ {
		base := float64(day) * Day
		if t := base + a.Model.PeakStart; t > 0 && t <= horizon {
			s.AtFunc(t, firePeakAlert, st)
		}
		if t := base + a.Model.PeakEnd; t > 0 && t <= horizon {
			s.AtFunc(t, fireOffPeakAlert, st)
		}
	}
}

// sciAlertState carries the analyzer and its sink to the shared
// window-boundary callbacks, so a horizon of N days schedules 2N alert
// events off one allocation.
type sciAlertState struct {
	a     *SciAnalyzer
	alert func(lambda float64)
}

func firePeakAlert(arg any) {
	st := arg.(*sciAlertState)
	st.alert(st.a.PeakEstimate())
}

func fireOffPeakAlert(arg any) {
	st := arg.(*sciAlertState)
	st.alert(st.a.OffPeakEstimate())
}

// WindowAnalyzer is an empirical analyzer (an instance of the paper's
// future-work direction of handling arbitrary workloads): it counts
// observed arrivals over fixed windows and predicts the next window's
// rate as Safety times the maximum of the last Windows window rates.
// It needs no model of the workload at all.
type WindowAnalyzer struct {
	Interval float64 // observation window length (s)
	Windows  int     // how many recent windows to consider
	Safety   float64 // multiplicative safety margin, e.g. 1.2
	Horizon  float64 // stop alerting after this time (0 = run forever)

	count   int
	history []float64
}

// Observe records one arrival at time t; the driver calls this for every
// request reaching the admission controller.
func (w *WindowAnalyzer) Observe(float64) { w.count++ }

// Start emits an alert at the end of every window with the predicted rate
// for the next window. Until the first window completes the estimate is
// zero, so pair this analyzer with a sensible initial fleet or a hybrid
// model-based warm-up.
func (w *WindowAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	if w.Interval <= 0 {
		panic("workload: WindowAnalyzer needs a positive Interval")
	}
	if w.Windows <= 0 {
		w.Windows = 1
	}
	if w.Safety == 0 {
		w.Safety = 1
	}
	tk := s.Every(w.Interval, w.Interval, func(now float64) {
		rate := float64(w.count) / w.Interval
		w.count = 0
		w.history = append(w.history, rate)
		if len(w.history) > w.Windows {
			w.history = w.history[len(w.history)-w.Windows:]
		}
		max := 0.0
		for _, r := range w.history {
			if r > max {
				max = r
			}
		}
		alert(w.Safety * max)
	})
	if w.Horizon > 0 {
		s.At(w.Horizon, tk.Stop)
	}
}

// rateHistorySnap is the shared snapshot store of the empirical analyzers
// (an in-progress window count plus a recent-rate history).
type rateHistorySnap struct {
	count   int
	history []float64
}

// capture fills sn from the analyzer state, reusing sn's buffer.
func (sn *rateHistorySnap) capture(count int, history []float64) {
	sn.count = count
	sn.history = append(sn.history[:0], history...)
}

// snapshotRateHistory implements Snapshot for the empirical analyzers.
func snapshotRateHistory(store any, count int, history []float64) any {
	sn, _ := store.(*rateHistorySnap)
	if sn == nil {
		sn = new(rateHistorySnap)
	}
	sn.capture(count, history)
	return sn
}

// Snapshot implements Rewindable.
func (w *WindowAnalyzer) Snapshot(store any) any {
	return snapshotRateHistory(store, w.count, w.history)
}

// Restore implements Rewindable.
func (w *WindowAnalyzer) Restore(store any) {
	sn := store.(*rateHistorySnap)
	w.count = sn.count
	w.history = append(w.history[:0], sn.history...)
}

// ARAnalyzer is an autoregressive empirical analyzer: it fits an AR(p)
// model to the sequence of per-window observed arrival rates by ordinary
// least squares and predicts the next window's rate, inflated by Safety.
// This is a stdlib-only stand-in for the ARMAX-class predictors the paper
// lists as future work.
type ARAnalyzer struct {
	Interval float64 // observation window length (s)
	Order    int     // AR order p (≥ 1)
	Fit      int     // number of recent windows used for fitting (≥ 2p+2)
	Safety   float64 // multiplicative safety margin
	Horizon  float64 // stop alerting after this time (0 = run forever)

	count   int
	history []float64
}

// Observe records one arrival.
func (a *ARAnalyzer) Observe(float64) { a.count++ }

// Start closes each window, refits the AR model, and alerts with the
// one-step-ahead forecast. While fewer than Fit windows are available it
// falls back to the most recent window's rate.
func (a *ARAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	if a.Interval <= 0 {
		panic("workload: ARAnalyzer needs a positive Interval")
	}
	if a.Order < 1 {
		a.Order = 1
	}
	if a.Fit < 2*a.Order+2 {
		a.Fit = 2*a.Order + 2
	}
	if a.Safety == 0 {
		a.Safety = 1
	}
	tk := s.Every(a.Interval, a.Interval, func(now float64) {
		rate := float64(a.count) / a.Interval
		a.count = 0
		a.history = append(a.history, rate)
		if len(a.history) > a.Fit {
			a.history = a.history[len(a.history)-a.Fit:]
		}
		pred := a.forecast()
		if pred < 0 {
			pred = 0
		}
		alert(a.Safety * pred)
	})
	if a.Horizon > 0 {
		s.At(a.Horizon, tk.Stop)
	}
}

// Snapshot implements Rewindable.
func (a *ARAnalyzer) Snapshot(store any) any {
	return snapshotRateHistory(store, a.count, a.history)
}

// Restore implements Rewindable.
func (a *ARAnalyzer) Restore(store any) {
	sn := store.(*rateHistorySnap)
	a.count = sn.count
	a.history = append(a.history[:0], sn.history...)
}

// forecast returns the one-step AR(p) prediction from the current history,
// or the last observation when the fit is under-determined or singular.
func (a *ARAnalyzer) forecast() float64 {
	h := a.history
	n := len(h)
	p := a.Order
	if n < p+2 {
		return h[n-1]
	}
	// Build the regression y_t = c + Σ φ_i y_{t-i} over the available rows.
	cols := p + 1 // intercept + p lags
	xtx := make([][]float64, cols)
	for i := range xtx {
		xtx[i] = make([]float64, cols)
	}
	xty := make([]float64, cols)
	for t := p; t < n; t++ {
		row := make([]float64, cols)
		row[0] = 1
		for i := 1; i <= p; i++ {
			row[i] = h[t-i]
		}
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * h[t]
		}
	}
	beta, ok := stats.SolveLinear(xtx, xty)
	if !ok {
		return h[n-1]
	}
	pred := beta[0]
	for i := 1; i <= p; i++ {
		pred += beta[i] * h[n-i]
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return h[n-1]
	}
	return pred
}
