package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
	"vmprov/internal/trace"
)

// writeTrace encodes a v2 trace to a temp file and returns its path.
func writeTrace(t *testing.T, clients []trace.ClientV2, recs []trace.RecordV2) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeV2(f, clients, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func tracev2Params(t *testing.T, path string) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(TraceV2Params{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRequestsFromV2(t *testing.T) {
	recs := []trace.RecordV2{
		{T: 0.5, Client: "a", Size: 0.1, Class: 2},
		{T: 1.5, Client: "b", Size: 0.2},
		{T: 1.5, Client: "a", Size: 0.3},
	}
	reqs := RequestsFromV2(recs)
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	for i, rec := range recs {
		want := Request{ID: uint64(i + 1), Arrival: rec.T, Service: rec.Size, Class: rec.Class, Client: rec.Client}
		if reqs[i] != want {
			t.Errorf("request %d = %+v, want %+v", i, reqs[i], want)
		}
	}
}

// TestBuildTraceV2 builds the "tracev2" kind from a recorded file and
// replays it: requests must come back in record order with their client
// tags, sizes, and classes intact, and the header roster must surface as
// the builder's client table.
func TestBuildTraceV2(t *testing.T) {
	clients := []trace.ClientV2{
		{Name: "a", SLOClass: "interactive"},
		{Name: "b", SLOClass: "batch"},
	}
	recs := []trace.RecordV2{
		{T: 1, Client: "a", Size: 0.1, Class: 1},
		{T: 2, Client: "b", Size: 0.2},
		{T: 2, Client: "a", Size: 0.3},
		{T: 5, Client: "b", Size: 0.4},
	}
	path := writeTrace(t, clients, recs)

	b, err := Build("tracev2", tracev2Params(t, path))
	if err != nil {
		t.Fatal(err)
	}
	wantClients := []ClientInfo{{Name: "a", SLOClass: "interactive"}, {Name: "b", SLOClass: "batch"}}
	if len(b.Clients) != len(wantClients) {
		t.Fatalf("builder clients %+v, want %+v", b.Clients, wantClients)
	}
	for i := range wantClients {
		if b.Clients[i] != wantClients[i] {
			t.Fatalf("builder clients %+v, want %+v", b.Clients, wantClients)
		}
	}

	// Two independent replays must yield the identical stream (the trace
	// source has no randomness; the RNG seed is irrelevant).
	replay := func(seed uint64) []Request {
		var got []Request
		s := sim.New()
		b.NewSource().Start(s, stats.NewRNG(seed), func(q Request) { got = append(got, q) })
		s.RunUntil(10)
		return got
	}
	got := replay(1)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d requests, want %d", len(got), len(recs))
	}
	for i, rec := range recs {
		if got[i].Arrival != rec.T || got[i].Service != rec.Size ||
			got[i].Client != rec.Client || got[i].Class != rec.Class {
			t.Errorf("replayed request %d = %+v, want record %+v", i, got[i], rec)
		}
	}
	other := replay(2)
	for i := range got {
		if got[i] != other[i] {
			t.Fatalf("replay depends on the seed at request %d: %+v vs %+v", i, got[i], other[i])
		}
	}
}

// TestBuildTraceV2Errors pins the constructor's parse-time failures: a
// missing path, an unreadable file, a zero-record trace, and a malformed
// trace (which must surface the decoder's line-numbered error).
func TestBuildTraceV2Errors(t *testing.T) {
	if _, err := Build("tracev2", []byte(`{}`)); err == nil || !strings.Contains(err.Error(), "needs a path") {
		t.Errorf("missing path error = %v", err)
	}
	if _, err := Build("tracev2", tracev2Params(t, filepath.Join(t.TempDir(), "absent.trace"))); err == nil {
		t.Error("unreadable file did not error")
	}

	empty := writeTrace(t, []trace.ClientV2{{Name: "a"}}, nil)
	if _, err := Build("tracev2", tracev2Params(t, empty)); err == nil ||
		!strings.Contains(err.Error(), "trace has no records") {
		t.Errorf("zero-record trace error = %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.trace")
	good := writeTrace(t, nil, []trace.RecordV2{{T: 1, Size: 0.1}})
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, append(data, []byte("{\"t\":0.5,\"size\":0.1}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Build("tracev2", tracev2Params(t, bad))
	if err == nil || !strings.Contains(err.Error(), "line 3") ||
		!strings.Contains(err.Error(), "out-of-order") {
		t.Errorf("malformed trace error = %v, want a line-3 out-of-order error", err)
	}
}
