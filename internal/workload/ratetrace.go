package workload

import (
	"fmt"
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// RateTraceSource is a non-homogeneous Poisson process whose rate is a
// piecewise-linear interpolation of measured (time, rate) points — the
// bridge from a real trace (e.g. the output of wlgen, or production
// monitoring data) back into the simulator. Arrivals are generated
// exactly by thinning against the trace maximum.
type RateTraceSource struct {
	Times   []float64 // ascending sample instants
	Rates   []float64 // rate at each instant (req/s)
	Service stats.Sampler
	Cycle   bool // wrap past the last point (periodic trace)

	ids counter
}

// Validate reports shape errors.
func (rt *RateTraceSource) Validate() error {
	if len(rt.Times) < 2 || len(rt.Times) != len(rt.Rates) {
		return fmt.Errorf("workload: rate trace needs ≥2 matched points, got %d/%d",
			len(rt.Times), len(rt.Rates))
	}
	for i := 1; i < len(rt.Times); i++ {
		if rt.Times[i] <= rt.Times[i-1] {
			return fmt.Errorf("workload: rate trace times not ascending at %d", i)
		}
	}
	for i, r := range rt.Rates {
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("workload: rate trace has invalid rate %v at %d", r, i)
		}
	}
	return nil
}

// MeanRate linearly interpolates the trace at time t. Before the first
// point it returns the first rate; past the last point it returns the
// last rate, or wraps when Cycle is set.
func (rt *RateTraceSource) MeanRate(t float64) float64 {
	times, rates := rt.Times, rt.Rates
	n := len(times)
	if n == 0 {
		return 0
	}
	if rt.Cycle {
		span := times[n-1] - times[0]
		t = times[0] + math.Mod(t-times[0], span)
		if t < times[0] {
			t += span
		}
	}
	if t <= times[0] {
		return rates[0]
	}
	if t >= times[n-1] {
		return rates[n-1]
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (t - times[lo]) / (times[hi] - times[lo])
	return rates[lo] + frac*(rates[hi]-rates[lo])
}

// Start schedules the thinned arrival chain up to the end of the trace
// (or forever when Cycle is set).
func (rt *RateTraceSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	if err := rt.Validate(); err != nil {
		panic(err)
	}
	arr := r.Split("ratetrace/arrivals")
	svc := r.Split("ratetrace/service")
	envelope := 0.0
	for _, v := range rt.Rates {
		if v > envelope {
			envelope = v
		}
	}
	if envelope == 0 {
		return
	}
	end := rt.Times[len(rt.Times)-1]
	var next func()
	next = func() {
		now := s.Now()
		if !rt.Cycle && now >= end {
			return
		}
		if arr.Float64()*envelope < rt.MeanRate(now) {
			emit(Request{ID: rt.ids.next(), Arrival: now, Service: rt.Service.Sample(svc)})
		}
		s.Schedule(arr.ExpFloat64()/envelope, next)
	}
	s.Schedule(arr.ExpFloat64()/envelope, next)
}

// Snapshot implements Rewindable; the thinned chain's only mutable state
// outside the kernel and RNG tree is the ID counter.
func (rt *RateTraceSource) Snapshot(store any) any { return snapshotCounter(store, rt.ids) }

// Restore implements Rewindable.
func (rt *RateTraceSource) Restore(store any) { rt.ids = store.(*counterSnap).ids }
