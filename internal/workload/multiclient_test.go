package workload

import (
	"math"
	"strings"
	"testing"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// genArrivals compiles a one-client multi source and returns the arrival
// instants generated up to horizon at the given seed.
func genArrivals(t *testing.T, cs ClientSpec, aggregate, horizon float64, seed uint64) []float64 {
	t.Helper()
	ms, err := NewMultiSource(aggregate, []ClientSpec{cs})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	var times []float64
	ms.Start(s, stats.NewRNG(seed), func(q Request) {
		if q.Client != cs.Name {
			t.Fatalf("request tagged %q, want %q", q.Client, cs.Name)
		}
		times = append(times, q.Arrival)
	})
	s.RunUntil(horizon)
	return times
}

// gapMoments returns the empirical mean and coefficient of variation of
// the interarrival gaps.
func gapMoments(times []float64) (mean, cv float64) {
	var w stats.Welford
	prev := 0.0
	for _, t := range times {
		w.Add(t - prev)
		prev = t
	}
	return w.Mean(), w.Std() / w.Mean()
}

// weibullGapCV is the analytic interarrival CV of a Weibull renewal
// process with the given shape.
func weibullGapCV(shape float64) float64 {
	g1 := math.Gamma(1 + 1/shape)
	g2 := math.Gamma(1 + 2/shape)
	return math.Sqrt(g2-g1*g1) / g1
}

// TestArrivalProcessStatistics is the statistical contract of every
// multi-client arrival process: at a fixed seed, the empirical mean rate
// and interarrival CV of the generated stream must land within tolerance
// of the spec parameters. One subtest per process kind.
func TestArrivalProcessStatistics(t *testing.T) {
	const (
		rate    = 50.0
		horizon = 4000.0
	)
	size := SizeSpec{Dist: "deterministic", Mean: 0.01}
	cases := []struct {
		name    string
		arrival ArrivalSpec
		wantCV  float64 // <0: only require CV strictly above 1 (burstier than Poisson)
		cvTol   float64
	}{
		{"poisson", ArrivalSpec{Process: ArrivalPoisson}, 1, 0.03},
		{"gamma-cv-bursty", ArrivalSpec{Process: ArrivalGammaCV, CV: 2.0}, 2.0, 0.06},
		{"gamma-cv-regular", ArrivalSpec{Process: ArrivalGammaCV, CV: 0.5}, 0.5, 0.03},
		{"weibull", ArrivalSpec{Process: ArrivalWeibull, Shape: 0.7}, weibullGapCV(0.7), 0.06},
		// Short sojourns give the modulating chain ~100 cycles over the
		// horizon, so the empirical rate mixes to the stationary mean.
		{"mmpp", ArrivalSpec{Process: ArrivalMMPP, Peak: 4, Sojourns: [2]float64{30, 6}}, -1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cs := ClientSpec{Name: "c", RateFraction: 1, Arrival: c.arrival, Size: size}
			times := genArrivals(t, cs, rate, horizon, 7)
			if len(times) < 1000 {
				t.Fatalf("only %d arrivals generated", len(times))
			}
			gotRate := float64(len(times)) / horizon
			if math.Abs(gotRate-rate)/rate > 0.05 {
				t.Errorf("empirical rate %.2f/s, spec %v/s", gotRate, rate)
			}
			_, gotCV := gapMoments(times)
			if c.wantCV < 0 {
				if gotCV < 1.1 {
					t.Errorf("mmpp interarrival CV %.3f, want > 1.1 (burstier than Poisson)", gotCV)
				}
				return
			}
			if math.Abs(gotCV-c.wantCV)/c.wantCV > c.cvTol {
				t.Errorf("interarrival CV %.3f, spec %.3f (tol %v)", gotCV, c.wantCV, c.cvTol)
			}
		})
	}
}

// TestPatternMultipliers pins the pattern math at known instants.
func TestPatternMultipliers(t *testing.T) {
	ramp := PatternSpec{Kind: PatternRamp, From: 0.5, To: 1.5, Start: 100, End: 300}
	for _, c := range []struct{ t, want float64 }{
		{0, 0.5}, {100, 0.5}, {200, 1.0}, {300, 1.5}, {1e6, 1.5},
	} {
		if got := ramp.Multiplier(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ramp(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	burst := PatternSpec{Kind: PatternBurst, Factor: 3, Period: 600, Duration: 60}
	for _, c := range []struct{ t, want float64 }{
		{0, 3}, {59.9, 3}, {60, 1}, {599, 1}, {600, 3}, {661, 1},
	} {
		if got := burst.Multiplier(c.t); got != c.want {
			t.Errorf("burst(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	mp := PatternSpec{Kind: PatternMultiPeriod, Periods: []float64{100, 50}, Amps: []float64{0.3, 0.2}}
	if got := mp.Multiplier(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("multi-period(0) = %v, want 1", got)
	}
	if got := mp.Multiplier(25); math.Abs(got-(1+0.3*math.Sin(math.Pi/2))) > 1e-12 {
		t.Errorf("multi-period(25) = %v", got)
	}
	// A validated pattern stays strictly positive everywhere.
	for ti := 0; ti < 10000; ti++ {
		if m := mp.Multiplier(float64(ti)); m <= 0 {
			t.Fatalf("multi-period multiplier %v at t=%d", m, ti)
		}
	}
}

// TestMeanRateFollowsPattern checks the modulated renewal source
// actually tracks its pattern: arrivals in the ramped-up window outnumber
// the ramped-down window by about the factor ratio.
func TestMeanRateFollowsPattern(t *testing.T) {
	cs := ClientSpec{
		Name: "ramped", RateFraction: 1,
		Arrival: ArrivalSpec{Process: ArrivalPoisson},
		Size:    SizeSpec{Dist: "deterministic", Mean: 0.01},
		Pattern: PatternSpec{Kind: PatternRamp, From: 0.5, To: 2.0, Start: 1000, End: 1200},
	}
	times := genArrivals(t, cs, 40, 2200, 3)
	var lo, hi int
	for _, at := range times {
		if at < 1000 {
			lo++
		} else if at >= 1200 {
			hi++
		}
	}
	loRate := float64(lo) / 1000
	hiRate := float64(hi) / 1000
	if math.Abs(loRate-20)/20 > 0.08 {
		t.Errorf("pre-ramp rate %.2f, want ≈20", loRate)
	}
	if math.Abs(hiRate-80)/80 > 0.08 {
		t.Errorf("post-ramp rate %.2f, want ≈80", hiRate)
	}
}

// TestClientSubstreamIndependence: each client draws from its own
// seeded substream, so adding a third client must not perturb the
// arrival instants of the existing two.
func TestClientSubstreamIndependence(t *testing.T) {
	size := SizeSpec{Dist: "jitter", Mean: 0.1, Jitter: 0.1}
	a := ClientSpec{Name: "a", RateFraction: 0.5, Arrival: ArrivalSpec{Process: ArrivalPoisson}, Size: size}
	b := ClientSpec{Name: "b", RateFraction: 0.5, Arrival: ArrivalSpec{Process: ArrivalGammaCV, CV: 2}, Size: size}
	collect := func(clients []ClientSpec, who string) []float64 {
		ms, err := NewMultiSource(100, clients)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New()
		var times []float64
		ms.Start(s, stats.NewRNG(42), func(q Request) {
			if q.Client == who {
				times = append(times, q.Arrival)
			}
		})
		s.RunUntil(600)
		return times
	}
	two := collect([]ClientSpec{a, b}, "a")
	// Same fractions for a and b; the newcomer takes over part of b's
	// share — a's absolute rate (0.5·100) is unchanged.
	b3 := b
	b3.RateFraction = 0.25
	c3 := ClientSpec{Name: "c", RateFraction: 0.25, Arrival: ArrivalSpec{Process: ArrivalWeibull, Shape: 0.8}, Size: size}
	three := collect([]ClientSpec{a, b3, c3}, "a")
	if len(two) != len(three) {
		t.Fatalf("client a generated %d vs %d arrivals after adding client c", len(two), len(three))
	}
	for i := range two {
		if two[i] != three[i] {
			t.Fatalf("client a arrival %d moved: %v vs %v", i, two[i], three[i])
		}
	}
}

// TestValidateClientsErrors pins the client-set validation contract,
// including the sorted duplicate-name list.
func TestValidateClientsErrors(t *testing.T) {
	size := SizeSpec{Dist: "deterministic", Mean: 0.1}
	pois := ArrivalSpec{Process: ArrivalPoisson}
	mk := func(name string, frac float64) ClientSpec {
		return ClientSpec{Name: name, RateFraction: frac, Arrival: pois, Size: size}
	}
	cases := []struct {
		name    string
		clients []ClientSpec
		want    string
	}{
		{"empty", nil, "at least one client"},
		{"dup-sorted", []ClientSpec{mk("zeta", 0.25), mk("alpha", 0.25), mk("zeta", 0.25), mk("alpha", 0.25)},
			"duplicate client names: alpha, zeta"},
		{"fraction-sum", []ClientSpec{mk("a", 0.5), mk("b", 0.2)}, "sum to 0.7, want 1"},
		{"no-name", []ClientSpec{mk("", 1)}, "client missing name"},
		{"bad-process", []ClientSpec{{Name: "a", RateFraction: 1, Arrival: ArrivalSpec{Process: "nope"}, Size: size}},
			"unknown arrival process \"nope\" (want one of gamma-cv, mmpp, poisson, weibull)"},
		{"extra-param", []ClientSpec{{Name: "a", RateFraction: 1, Arrival: ArrivalSpec{Process: ArrivalPoisson, CV: 2}, Size: size}},
			"does not take the supplied parameter"},
		{"mmpp-pattern", []ClientSpec{{
			Name: "a", RateFraction: 1,
			Arrival: ArrivalSpec{Process: ArrivalMMPP, Peak: 2, Sojourns: [2]float64{60, 30}},
			Size:    size,
			Pattern: PatternSpec{Kind: PatternBurst, Factor: 2, Period: 60, Duration: 10},
		}}, "take no temporal pattern"},
		{"bad-size", []ClientSpec{{Name: "a", RateFraction: 1, Arrival: pois, Size: SizeSpec{Dist: "pareto", Mean: 0.1, Alpha: 0.9}}},
			"alpha > 1"},
		{"bad-pattern", []ClientSpec{{Name: "a", RateFraction: 1, Arrival: pois, Size: size,
			Pattern: PatternSpec{Kind: PatternMultiPeriod, Periods: []float64{60}, Amps: []float64{1.2}}}},
			"must stay below 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateClients(c.clients)
			if err == nil {
				t.Fatal("invalid client set accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestMultiKindRegistry: the "multi" workload kind compiles through the
// registry, exposes its client table, and rejects bad params with the
// kind-prefixed error.
func TestMultiKindRegistry(t *testing.T) {
	params := []byte(`{
		"aggregate_rate": 60,
		"clients": [
			{"name": "fg", "rate_fraction": 0.7, "slo_class": "interactive",
			 "arrival": {"process": "poisson"}, "size": {"dist": "jitter", "mean": 0.1, "jitter": 0.1}},
			{"name": "bg", "rate_fraction": 0.3, "slo_class": "batch",
			 "arrival": {"process": "gamma-cv", "cv": 2.5}, "size": {"dist": "weibull", "mean": 0.2, "shape": 1.5}}
		]
	}`)
	b, err := Build("multi", params)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Clients) != 2 || b.Clients[0] != (ClientInfo{Name: "fg", SLOClass: "interactive"}) ||
		b.Clients[1] != (ClientInfo{Name: "bg", SLOClass: "batch"}) {
		t.Fatalf("client table %+v", b.Clients)
	}
	src := b.NewSource()
	if src.MeanRate(0) != 60 {
		t.Errorf("aggregate MeanRate %v, want 60", src.MeanRate(0))
	}
	// Fresh sources per replication: two sources at the same seed
	// generate identical streams (no shared mutable state).
	count := func(src Source) int {
		s := sim.New()
		n := 0
		src.Start(s, stats.NewRNG(5), func(Request) { n++ })
		s.RunUntil(300)
		return n
	}
	if n1, n2 := count(b.NewSource()), count(b.NewSource()); n1 != n2 || n1 == 0 {
		t.Fatalf("fresh sources diverge: %d vs %d", n1, n2)
	}

	if _, err := Build("multi", []byte(`{"aggregate_rate": 0, "clients": []}`)); err == nil ||
		!strings.Contains(err.Error(), `kind "multi"`) {
		t.Errorf("bad multi params error %v lacks kind prefix", err)
	}
}

// TestSizeSpecMeans: every size distribution's empirical mean tracks the
// spec mean.
func TestSizeSpecMeans(t *testing.T) {
	cases := []SizeSpec{
		{Dist: "jitter", Mean: 0.1, Jitter: 0.1},
		{Dist: "deterministic", Mean: 0.25},
		{Dist: "exponential", Mean: 0.5},
		{Dist: "uniform", Mean: 0.3, CV: 0.4},
		{Dist: "lognormal", Mean: 0.12, CV: 0.8},
		{Dist: "weibull", Mean: 0.18, Shape: 1.5},
		{Dist: "pareto", Mean: 0.15, Alpha: 2.5},
	}
	for _, z := range cases {
		t.Run(z.Dist, func(t *testing.T) {
			if err := z.validate(); err != nil {
				t.Fatal(err)
			}
			sm := z.sampler()
			r := stats.NewRNG(9)
			var w stats.Welford
			for i := 0; i < 200000; i++ {
				w.Add(sm.Sample(r))
			}
			want := z.Mean
			if z.Dist == "jitter" {
				want = z.Mean * (1 + z.Jitter/2)
			}
			if math.Abs(w.Mean()-want)/want > 0.03 {
				t.Errorf("empirical mean %v, want %v", w.Mean(), want)
			}
		})
	}
}
