package workload

import (
	"math"
	"testing"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

func TestScientificMeanRateLevels(t *testing.T) {
	sc := NewScientific(1)
	// E[tasks] = E[max(1,⌊X⌋)] ≈ 1.62.
	if mt := sc.MeanTasks(); mt < 1.55 || mt > 1.70 {
		t.Fatalf("mean tasks per job = %v, want ≈1.62", mt)
	}
	// Peak: E[tasks]/E[interarrival] ≈ 1.62/7.152 ≈ 0.226 req/s.
	peak := sc.MeanRate(10 * 3600)
	if peak < 0.21 || peak > 0.24 {
		t.Fatalf("peak mean rate = %v, want ≈0.226", peak)
	}
	// Off-peak: E[jobs]·E[tasks]/1800 ≈ 21.49·1.62/1800 ≈ 0.0193 req/s.
	off := sc.MeanRate(3 * 3600)
	if off < 0.017 || off > 0.022 {
		t.Fatalf("off-peak mean rate = %v, want ≈0.019", off)
	}
	if peak/off < 8 {
		t.Fatalf("peak/off-peak ratio = %v, want ≈12", peak/off)
	}
	// Boundaries.
	if sc.MeanRate(8*3600) != peak {
		t.Fatal("08:00 should already be peak")
	}
	if sc.MeanRate(17*3600) != off {
		t.Fatal("17:00 should already be off-peak")
	}
}

// TestScientificDailyVolume pins the one-day request volume to the
// paper's reported average of 8286 requests per one-day simulation
// (analytic expectation of the model: ≈8.37k tasks).
func TestScientificDailyVolume(t *testing.T) {
	var totals []int
	for seed := uint64(0); seed < 3; seed++ {
		sc := NewScientific(1)
		s := sim.New()
		n := 0
		sc.Start(s, stats.NewRNG(seed), func(q Request) {
			n++
			if q.Service < 300 || q.Service > 330 {
				t.Fatalf("service time %v outside [300, 330]", q.Service)
			}
		})
		s.RunUntil(Day)
		totals = append(totals, n)
	}
	for _, n := range totals {
		if n < 7400 || n > 9400 {
			t.Fatalf("one-day volume %d outside band [7400, 9400] (paper: 8286)", n)
		}
	}
}

func TestScientificPeakConcentration(t *testing.T) {
	sc := NewScientific(1)
	s := sim.New()
	var peak, off int
	sc.Start(s, stats.NewRNG(5), func(q Request) {
		tod := math.Mod(q.Arrival, Day)
		if tod >= sc.PeakStart && tod < sc.PeakEnd {
			peak++
		} else {
			off++
		}
	})
	s.RunUntil(Day)
	if peak < 5*off {
		t.Fatalf("peak=%d off=%d: peak window should dominate volume", peak, off)
	}
	if off == 0 {
		t.Fatal("off-peak generated nothing")
	}
}

func TestScientificScaleChangesJobRateOnly(t *testing.T) {
	count := func(scale float64, seed uint64) int {
		sc := NewScientific(scale)
		s := sim.New()
		n := 0
		sc.Start(s, stats.NewRNG(seed), func(Request) { n++ })
		s.RunUntil(Day)
		return n
	}
	full := count(1, 3)
	half := count(0.5, 3)
	ratio := float64(half) / float64(full)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("scale 0.5 produced ratio %v, want ≈0.5", ratio)
	}
}

func TestScientificMultiDay(t *testing.T) {
	sc := NewScientific(0.5)
	s := sim.New()
	var day1, day2 int
	sc.Start(s, stats.NewRNG(9), func(q Request) {
		if q.Arrival < Day {
			day1++
		} else {
			day2++
		}
	})
	s.RunUntil(2 * Day)
	if day1 == 0 || day2 == 0 {
		t.Fatalf("multi-day generation broke: day1=%d day2=%d", day1, day2)
	}
	ratio := float64(day2) / float64(day1)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("days should have similar volume, got ratio %v", ratio)
	}
}

func TestScientificDeterministic(t *testing.T) {
	run := func() int {
		sc := NewScientific(1)
		s := sim.New()
		n := 0
		sc.Start(s, stats.NewRNG(11), func(Request) { n++ })
		s.RunUntil(Day)
		return n
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replications diverge: %d vs %d", a, b)
	}
}

func TestSciAnalyzerEstimates(t *testing.T) {
	sc := NewScientific(1)
	a := NewSciAnalyzer(sc)
	// Paper: peak estimate = 1.2·1.309/7.379 tasks/s.
	wantPeak := 1.2 * 1.309 / 7.379
	if got := a.PeakEstimate(); math.Abs(got-wantPeak)/wantPeak > 0.001 {
		t.Fatalf("peak estimate = %v, want %v", got, wantPeak)
	}
	// Paper: off-peak estimate = 2.6·15.298·1.309/1800 tasks/s.
	wantOff := 2.6 * 15.298 * 1.309 / 1800
	if got := a.OffPeakEstimate(); math.Abs(got-wantOff)/wantOff > 0.001 {
		t.Fatalf("off-peak estimate = %v, want %v", got, wantOff)
	}
	// The deliberate overestimation the paper describes: estimates exceed
	// the true mean rates.
	if a.PeakEstimate() <= sc.MeanRate(10*3600)*0.75 {
		t.Fatal("peak estimate suspiciously low")
	}
	if a.OffPeakEstimate() <= sc.MeanRate(0) {
		t.Fatal("off-peak estimate must exceed the true off-peak rate")
	}
}

func TestSciAnalyzerAlertSchedule(t *testing.T) {
	sc := NewScientific(1)
	a := NewSciAnalyzer(sc)
	a.Horizon = Day
	s := sim.New()
	type alert struct{ t, lambda float64 }
	var alerts []alert
	a.Start(s, func(l float64) { alerts = append(alerts, alert{s.Now(), l}) })
	s.Run()
	if len(alerts) != 3 {
		t.Fatalf("got %d alerts, want 3 (t=0, 08:00, 17:00): %+v", len(alerts), alerts)
	}
	if alerts[0].t != 0 || alerts[1].t != 8*3600 || alerts[2].t != 17*3600 {
		t.Fatalf("alert times wrong: %+v", alerts)
	}
	if !(alerts[1].lambda > alerts[0].lambda && alerts[1].lambda > alerts[2].lambda) {
		t.Fatalf("peak alert should carry the largest estimate: %+v", alerts)
	}
	if alerts[0].lambda != alerts[2].lambda {
		t.Fatal("both off-peak alerts should carry the same estimate")
	}
}
