package workload

import (
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// MMPPSource is a two-state Markov-modulated Poisson process: the arrival
// rate alternates between two levels with exponentially distributed
// sojourns. It produces burstier-than-Poisson traffic with the same mean,
// the canonical stress case for the paper's "highly dynamic workload"
// challenge, and is used by the burstiness ablation.
type MMPPSource struct {
	Rates    [2]float64 // arrival rate in each state
	Sojourns [2]float64 // mean time spent in each state (s)
	Service  stats.Sampler
	Horizon  float64 // stop generating after this time (0 = never)

	state int
	ids   counter
	run   *mmppRun // current replication's chain state, retained for snapshot
}

// MeanRate returns the long-run average rate, weighting each state's rate
// by its stationary probability.
func (m *MMPPSource) MeanRate(float64) float64 {
	total := m.Sojourns[0] + m.Sojourns[1]
	if total == 0 {
		return 0
	}
	return (m.Rates[0]*m.Sojourns[0] + m.Rates[1]*m.Sojourns[1]) / total
}

// Burstiness returns the ratio of the peak state rate to the mean rate.
func (m *MMPPSource) Burstiness() float64 {
	mean := m.MeanRate(0)
	if mean == 0 {
		return 0
	}
	return math.Max(m.Rates[0], m.Rates[1]) / mean
}

// Start schedules the modulated arrival chain. The process is exact: on
// every state flip the pending interarrival gap is re-drawn under the new
// state's rate, which is valid because exponential gaps are memoryless.
// The chain's cross-event state (the pending arrival handle) lives in a
// run struct shared by package-level callbacks, so a snapshot can reach
// it; the callbacks draw and schedule in exactly the order the closure
// version did.
func (m *MMPPSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	run := &mmppRun{
		m:    m,
		s:    s,
		emit: emit,
		arr:  r.Split("mmpp/arrivals"),
		svc:  r.Split("mmpp/service"),
		mod:  r.Split("mmpp/modulation"),
	}
	m.run = run
	s.ScheduleFunc(run.mod.ExpFloat64()*m.Sojourns[0], mmppFlip, run)
	run.schedule()
}

// mmppRun is one replication's chain state: the substreams and the handle
// of the pending arrival, which a state flip cancels and redraws.
type mmppRun struct {
	m       *MMPPSource
	s       *sim.Sim
	emit    func(Request)
	arr     *stats.RNG
	svc     *stats.RNG
	mod     *stats.RNG
	pending sim.Event
}

// schedule arms the next arrival under the current state's rate.
func (run *mmppRun) schedule() {
	run.pending = sim.Event{}
	rate := run.m.Rates[run.m.state]
	if rate <= 0 {
		return // silent state: the next flip reschedules
	}
	run.pending = run.s.ScheduleFunc(run.arr.ExpFloat64()/rate, mmppArrive, run)
}

// mmppArrive fires one arrival and re-arms the chain.
func mmppArrive(a any) {
	run := a.(*mmppRun)
	m := run.m
	now := run.s.Now()
	run.pending = sim.Event{}
	if m.Horizon > 0 && now >= m.Horizon {
		return
	}
	run.emit(Request{ID: m.ids.next(), Arrival: now, Service: m.Service.Sample(run.svc)})
	run.schedule()
}

// mmppFlip switches the modulation state: cancel any pending arrival and
// redraw its gap under the new rate (canceling the zero handle is a
// no-op).
func mmppFlip(a any) {
	run := a.(*mmppRun)
	m := run.m
	m.state = 1 - m.state
	run.s.Cancel(run.pending)
	if m.Horizon == 0 || run.s.Now() < m.Horizon {
		run.schedule()
		run.s.ScheduleFunc(run.mod.ExpFloat64()*m.Sojourns[m.state], mmppFlip, run)
	}
}

// mmppSnap holds one captured MMPP chain state.
type mmppSnap struct {
	state   int
	ids     counter
	pending sim.Event
}

// Snapshot implements Rewindable.
func (m *MMPPSource) Snapshot(store any) any {
	sn, _ := store.(*mmppSnap)
	if sn == nil {
		sn = new(mmppSnap)
	}
	sn.state = m.state
	sn.ids = m.ids
	if m.run != nil {
		sn.pending = m.run.pending
	}
	return sn
}

// Restore implements Rewindable.
func (m *MMPPSource) Restore(store any) {
	sn := store.(*mmppSnap)
	m.state = sn.state
	m.ids = sn.ids
	if m.run != nil {
		m.run.pending = sn.pending
	}
}

// SinusoidSource is a non-homogeneous Poisson process with rate
// Base + Amp·sin(2πt/Period + Phase), generated exactly by thinning
// against the envelope Base+|Amp|. It generalizes the web workload's
// diurnal shape to arbitrary periods for custom experiments.
type SinusoidSource struct {
	Base    float64 // mean rate (must exceed |Amp| for a valid process)
	Amp     float64 // amplitude
	Period  float64 // seconds per cycle
	Phase   float64 // radians
	Service stats.Sampler
	Horizon float64

	ids counter
}

// MeanRate returns the instantaneous expected rate at time t.
func (ss *SinusoidSource) MeanRate(t float64) float64 {
	r := ss.Base + ss.Amp*math.Sin(2*math.Pi*t/ss.Period+ss.Phase)
	if r < 0 {
		return 0
	}
	return r
}

// Start schedules the thinned arrival chain.
func (ss *SinusoidSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	if ss.Period <= 0 {
		panic("workload: SinusoidSource needs a positive Period")
	}
	arr := r.Split("sin/arrivals")
	svc := r.Split("sin/service")
	envelope := ss.Base + math.Abs(ss.Amp)
	if envelope <= 0 {
		return
	}
	var next func()
	next = func() {
		now := s.Now()
		if ss.Horizon > 0 && now >= ss.Horizon {
			return
		}
		// Thinning: accept a candidate with probability rate(t)/envelope.
		if arr.Float64()*envelope < ss.MeanRate(now) {
			emit(Request{ID: ss.ids.next(), Arrival: now, Service: ss.Service.Sample(svc)})
		}
		s.Schedule(arr.ExpFloat64()/envelope, next)
	}
	s.Schedule(arr.ExpFloat64()/envelope, next)
}

// Snapshot implements Rewindable; the thinned chain's only mutable state
// outside the kernel and RNG tree is the ID counter.
func (ss *SinusoidSource) Snapshot(store any) any { return snapshotCounter(store, ss.ids) }

// Restore implements Rewindable.
func (ss *SinusoidSource) Restore(store any) { ss.ids = store.(*counterSnap).ids }
