package workload

import (
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// MMPPSource is a two-state Markov-modulated Poisson process: the arrival
// rate alternates between two levels with exponentially distributed
// sojourns. It produces burstier-than-Poisson traffic with the same mean,
// the canonical stress case for the paper's "highly dynamic workload"
// challenge, and is used by the burstiness ablation.
type MMPPSource struct {
	Rates    [2]float64 // arrival rate in each state
	Sojourns [2]float64 // mean time spent in each state (s)
	Service  stats.Sampler
	Horizon  float64 // stop generating after this time (0 = never)

	state int
	ids   counter
}

// MeanRate returns the long-run average rate, weighting each state's rate
// by its stationary probability.
func (m *MMPPSource) MeanRate(float64) float64 {
	total := m.Sojourns[0] + m.Sojourns[1]
	if total == 0 {
		return 0
	}
	return (m.Rates[0]*m.Sojourns[0] + m.Rates[1]*m.Sojourns[1]) / total
}

// Burstiness returns the ratio of the peak state rate to the mean rate.
func (m *MMPPSource) Burstiness() float64 {
	mean := m.MeanRate(0)
	if mean == 0 {
		return 0
	}
	return math.Max(m.Rates[0], m.Rates[1]) / mean
}

// Start schedules the modulated arrival chain. The process is exact: on
// every state flip the pending interarrival gap is re-drawn under the new
// state's rate, which is valid because exponential gaps are memoryless.
func (m *MMPPSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	arr := r.Split("mmpp/arrivals")
	svc := r.Split("mmpp/service")
	mod := r.Split("mmpp/modulation")

	var pending sim.Event
	var arrive func()
	schedule := func() {
		pending = sim.Event{}
		rate := m.Rates[m.state]
		if rate <= 0 {
			return // silent state: the next flip reschedules
		}
		pending = s.Schedule(arr.ExpFloat64()/rate, arrive)
	}
	arrive = func() {
		now := s.Now()
		pending = sim.Event{}
		if m.Horizon > 0 && now >= m.Horizon {
			return
		}
		emit(Request{ID: m.ids.next(), Arrival: now, Service: m.Service.Sample(svc)})
		schedule()
	}

	// State switching chain: cancel any pending arrival and redraw its
	// gap under the new rate (canceling the zero handle is a no-op).
	var flip func()
	flip = func() {
		m.state = 1 - m.state
		s.Cancel(pending)
		if m.Horizon == 0 || s.Now() < m.Horizon {
			schedule()
			s.Schedule(mod.ExpFloat64()*m.Sojourns[m.state], flip)
		}
	}
	s.Schedule(mod.ExpFloat64()*m.Sojourns[0], flip)
	schedule()
}

// SinusoidSource is a non-homogeneous Poisson process with rate
// Base + Amp·sin(2πt/Period + Phase), generated exactly by thinning
// against the envelope Base+|Amp|. It generalizes the web workload's
// diurnal shape to arbitrary periods for custom experiments.
type SinusoidSource struct {
	Base    float64 // mean rate (must exceed |Amp| for a valid process)
	Amp     float64 // amplitude
	Period  float64 // seconds per cycle
	Phase   float64 // radians
	Service stats.Sampler
	Horizon float64

	ids counter
}

// MeanRate returns the instantaneous expected rate at time t.
func (ss *SinusoidSource) MeanRate(t float64) float64 {
	r := ss.Base + ss.Amp*math.Sin(2*math.Pi*t/ss.Period+ss.Phase)
	if r < 0 {
		return 0
	}
	return r
}

// Start schedules the thinned arrival chain.
func (ss *SinusoidSource) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	if ss.Period <= 0 {
		panic("workload: SinusoidSource needs a positive Period")
	}
	arr := r.Split("sin/arrivals")
	svc := r.Split("sin/service")
	envelope := ss.Base + math.Abs(ss.Amp)
	if envelope <= 0 {
		return
	}
	var next func()
	next = func() {
		now := s.Now()
		if ss.Horizon > 0 && now >= ss.Horizon {
			return
		}
		// Thinning: accept a candidate with probability rate(t)/envelope.
		if arr.Float64()*envelope < ss.MeanRate(now) {
			emit(Request{ID: ss.ids.next(), Arrival: now, Service: ss.Service.Sample(svc)})
		}
		s.Schedule(arr.ExpFloat64()/envelope, next)
	}
	s.Schedule(arr.ExpFloat64()/envelope, next)
}
