package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Registered()
	for _, want := range []string{"web", "scientific", "modulated", "trace"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in kind %q not registered (have %v)", want, names)
		}
	}
}

func TestBuildUnknownKindListsNames(t *testing.T) {
	_, err := Build("no-such-kind", nil)
	if err == nil {
		t.Fatal("unknown kind did not error")
	}
	for _, want := range []string{"no-such-kind", "web", "scientific"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestBuildWebMatchesConstructor(t *testing.T) {
	params, _ := json.Marshal(WebParams{Scale: 0.25})
	b, err := Build("web", params)
	if err != nil {
		t.Fatal(err)
	}
	src := b.NewSource()
	w, ok := src.(*Web)
	if !ok {
		t.Fatalf("source is %T, want *Web", src)
	}
	direct := NewWeb(0.25)
	if w.Scale != direct.Scale || w.Interval != direct.Interval || w.BaseService != direct.BaseService {
		t.Fatalf("spec-built web differs from NewWeb: %+v vs %+v", w, direct)
	}
	an := b.NewAnalyzer(src, Week)
	wa, ok := an.(*WebAnalyzer)
	if !ok || wa.Model != w || wa.Horizon != Week {
		t.Fatalf("web analyzer wiring wrong: %#v", an)
	}
	// Each NewSource call must yield a fresh, independent model.
	if b.NewSource() == src {
		t.Fatal("NewSource returned a shared source")
	}
}

func TestBuildScientificDefaults(t *testing.T) {
	b, err := Build("scientific", nil) // empty params = paper scale
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := b.NewSource().(*Scientific)
	if !ok || sc.Scale != 1 {
		t.Fatalf("default scientific source wrong: %#v", b.NewSource())
	}
	a, ok := b.NewAnalyzer(sc, Day).(*SciAnalyzer)
	if !ok || a.Model != sc || a.Horizon != Day {
		t.Fatalf("scientific analyzer wiring wrong: %#v", a)
	}
	if a.PeakFactor != 1.2 || a.OffPeakFactor != 2.6 {
		t.Fatalf("paper safety factors lost: %+v", a)
	}
}

func TestBuildRejectsUnknownParamFields(t *testing.T) {
	_, err := Build("web", json.RawMessage(`{"scale": 1, "typo": 2}`))
	if err == nil || !strings.Contains(err.Error(), "typo") {
		t.Fatalf("unknown param field not rejected: %v", err)
	}
}

func TestBuildModulated(t *testing.T) {
	params, _ := json.Marshal(ModulatedParams{
		Rates:       [2]float64{2, 10},
		Sojourns:    [2]float64{300, 60},
		BaseService: 1,
		Jitter:      0.1,
	})
	b, err := Build("modulated", params)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := b.NewSource().(*MMPPSource)
	if !ok {
		t.Fatalf("source is %T, want *MMPPSource", b.NewSource())
	}
	if src.Rates != [2]float64{2, 10} || src.Sojourns != [2]float64{300, 60} {
		t.Fatalf("modulated source params wrong: %+v", src)
	}
	if _, ok := b.NewAnalyzer(src, 0).(*WindowAnalyzer); !ok {
		t.Fatal("modulated kind should pair with the window analyzer")
	}
	// The source must actually generate traffic.
	s := sim.New()
	n := 0
	src.Start(s, stats.NewRNG(1), func(Request) { n++ })
	s.RunUntil(600)
	if n == 0 {
		t.Fatal("modulated source emitted no requests")
	}

	for _, bad := range []ModulatedParams{
		{Rates: [2]float64{0, 0}, Sojourns: [2]float64{1, 1}, BaseService: 1},
		{Rates: [2]float64{1, 1}, Sojourns: [2]float64{0, 1}, BaseService: 1},
		{Rates: [2]float64{1, 1}, Sojourns: [2]float64{1, 1}, BaseService: 0},
	} {
		raw, _ := json.Marshal(bad)
		if _, err := Build("modulated", raw); err == nil {
			t.Errorf("invalid modulated params accepted: %+v", bad)
		}
	}
}

func TestBuildTrace(t *testing.T) {
	params, _ := json.Marshal(TraceParams{
		Times:       []float64{0, 600, 1200},
		Rates:       []float64{1, 5, 1},
		BaseService: 0.5,
	})
	b, err := Build("trace", params)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := b.NewSource().(*RateTraceSource)
	if !ok {
		t.Fatalf("source is %T, want *RateTraceSource", b.NewSource())
	}
	s := sim.New()
	n := 0
	src.Start(s, stats.NewRNG(2), func(Request) { n++ })
	s.RunUntil(1200)
	if n == 0 {
		t.Fatal("trace source emitted no requests")
	}
	// Sources must not share backing slices: mutating one replication's
	// trace cannot leak into the next.
	other := b.NewSource().(*RateTraceSource)
	other.Rates[0] = 99
	if src.Rates[0] == 99 {
		t.Fatal("trace sources share their rate slice")
	}

	if _, err := Build("trace", json.RawMessage(`{"times":[0],"rates":[1],"base_service":1}`)); err == nil {
		t.Error("single-point trace accepted")
	}
	if _, err := Build("trace", json.RawMessage(`{"times":[0,1],"rates":[1,1],"base_service":0}`)); err == nil {
		t.Error("zero base_service accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("nil constructor", func() { Register("x-nil", nil) })
	assertPanics("duplicate", func() {
		Register("web", func(json.RawMessage) (*Builder, error) { return nil, nil })
	})
}
