package workload

import (
	"vmprov/internal/forecast"
	"vmprov/internal/sim"
)

// ForecastAnalyzer adapts any forecast.Forecaster into a workload
// analyzer: observed arrivals are binned into fixed windows, the
// forecaster is fed the per-window rates, and its one-step-ahead
// prediction (times Safety) becomes the alert for the next window. This
// is the generic form of the paper's future-work predictors; pick Holt
// for ramps, SeasonalNaive for strongly diurnal loads, AR for ARMAX-style
// fitting.
type ForecastAnalyzer struct {
	Interval   float64 // observation window (s)
	Forecaster forecast.Forecaster
	Safety     float64 // multiplicative margin on the forecast
	Horizon    float64 // stop alerting after this time (0 = run forever)

	count int
}

// Observe records one arrival; the driver feeds every request.
func (fa *ForecastAnalyzer) Observe(float64) { fa.count++ }

// Start closes each window, updates the forecaster, and alerts with the
// inflated forecast.
func (fa *ForecastAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	if fa.Interval <= 0 {
		panic("workload: ForecastAnalyzer needs a positive Interval")
	}
	if fa.Forecaster == nil {
		panic("workload: ForecastAnalyzer needs a Forecaster")
	}
	if fa.Safety == 0 {
		fa.Safety = 1
	}
	tk := s.Every(fa.Interval, fa.Interval, func(float64) {
		rate := float64(fa.count) / fa.Interval
		fa.count = 0
		fa.Forecaster.Observe(rate)
		pred := fa.Forecaster.Predict()
		if pred < 0 {
			pred = 0
		}
		alert(fa.Safety * pred)
	})
	if fa.Horizon > 0 {
		s.At(fa.Horizon, tk.Stop)
	}
}

// forecastSnap holds one captured ForecastAnalyzer state.
type forecastSnap struct {
	count int
	fc    any
}

// Snapshot implements Rewindable; it requires a forecaster that also
// implements the protocol (every forecaster in internal/forecast does).
func (fa *ForecastAnalyzer) Snapshot(store any) any {
	rw, ok := fa.Forecaster.(forecast.Rewindable)
	if !ok {
		panic("workload: ForecastAnalyzer snapshot needs a forecast.Rewindable forecaster")
	}
	sn, _ := store.(*forecastSnap)
	if sn == nil {
		sn = new(forecastSnap)
	}
	sn.count = fa.count
	sn.fc = rw.Snapshot(sn.fc)
	return sn
}

// Restore implements Rewindable.
func (fa *ForecastAnalyzer) Restore(store any) {
	sn := store.(*forecastSnap)
	fa.count = sn.count
	fa.Forecaster.(forecast.Rewindable).Restore(sn.fc)
}
