package workload

import (
	"math"
	"slices"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// Day length in seconds; the denominator of the paper's Equation 2.
const Day = 86400.0

// Week is seven days in seconds; the web scenario simulates one week.
const Week = 7 * Day

// DayRate holds the minimum and maximum requests/second of one weekday
// (one row of the paper's Table II).
type DayRate struct {
	Min, Max float64
}

// WikipediaRates is the paper's Table II: minimum and maximum number of
// requests per second on each week day of the web workload, indexed
// Sunday=0 through Saturday=6.
var WikipediaRates = [7]DayRate{
	{Min: 400, Max: 900},  // Sunday
	{Min: 500, Max: 1000}, // Monday
	{Min: 500, Max: 1200}, // Tuesday
	{Min: 500, Max: 1200}, // Wednesday
	{Min: 500, Max: 1200}, // Thursday
	{Min: 500, Max: 1200}, // Friday
	{Min: 500, Max: 1000}, // Saturday
}

// Monday is the weekday index the paper's web simulation starts on
// ("one week of requests ... starting at Monday 12 a.m.").
const Monday = 1

// Web is the paper's web workload (Section V-B1): a simplified English
// Wikipedia trace. The data center receives requests in batches every
// Interval seconds; the expected rate follows Equation 2 between the
// weekday's minimum and maximum with the trough at midnight and the peak
// at noon, the realized per-interval rate is normally distributed around
// it with relative standard deviation NoiseSigma, and each request's
// service time is BaseService inflated by U(0, Jitter).
type Web struct {
	Rates       [7]DayRate // per-weekday rate bounds (Table II)
	StartDay    int        // weekday at t=0, Sunday=0 (paper: Monday)
	Interval    float64    // arrival batch interval (paper: 60 s)
	NoiseSigma  float64    // relative σ of the per-interval rate (paper: 0.05)
	BaseService float64    // base request execution time (paper: 0.100 s)
	Jitter      float64    // uniform service inflation upper bound (paper: 0.10)
	Scale       float64    // load scale factor (1 = paper scale)

	ids counter
	run *webTicker // current replication's tick state, retained for snapshot
}

// NewWeb returns the paper's web workload at the given load scale
// (scale 1 reproduces the paper's ≈500 M requests per simulated week).
func NewWeb(scale float64) *Web {
	return &Web{
		Rates:       WikipediaRates,
		StartDay:    Monday,
		Interval:    60,
		NoiseSigma:  0.05,
		BaseService: 0.100,
		Jitter:      0.10,
		Scale:       scale,
	}
}

// MeanRate implements Equation 2: r = Rmin + (Rmax − Rmin)·sin(πt/86400)
// with t the second of the current day, scaled by the load factor.
func (w *Web) MeanRate(t float64) float64 {
	day := (w.StartDay + int(math.Floor(t/Day))) % 7
	if day < 0 {
		day += 7
	}
	tod := math.Mod(t, Day)
	if tod < 0 {
		tod += Day
	}
	r := w.Rates[day]
	return w.Scale * (r.Min + (r.Max-r.Min)*math.Sin(math.Pi*tod/Day))
}

// Start schedules one batch of arrivals every Interval. Within a batch the
// realized rate is N(r, NoiseSigma·r) clamped at zero and arrivals are
// spread uniformly over the interval.
//
// Arrival injection is batched: each tick pre-samples the whole interval's
// requests into a reusable slice (drawing from the RNG streams in exactly
// the order the per-event version did), sorts it by arrival time, and
// walks it with a single self-rescheduling kernel event. At full scale
// this replaces ≈500 M per-request events-plus-closures per simulated
// week with one pooled event and zero per-request allocations.
//
// The tick body lives in webTicker, the FluidSource seam the hybrid
// engine drives directly; Start is exactly the all-ticks-exact schedule.
func (w *Web) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	tk := w.NewTicker(s, r, emit)
	s.Every(0, w.Interval, func(now float64) {
		tk.Emit(now, tk.SampleCount(now))
	})
}

// TickInterval returns the batch interval, implementing FluidSource.
func (w *Web) TickInterval() float64 { return w.Interval }

// NewTicker builds the web generator's per-run tick state: the arrival
// and service substreams (split from r in Start's order) and the pooled
// batch walker.
func (w *Web) NewTicker(s *sim.Sim, r *stats.RNG, emit func(Request)) Ticker {
	tk := &webTicker{
		w:   w,
		s:   s,
		arr: r.Split("web/arrivals"),
		svc: r.Split("web/service"),
		service: stats.Scaled{
			S:      stats.Uniform{Min: 1, Max: 1 + w.Jitter},
			Factor: w.BaseService,
		},
		emit: emit,
		wk:   newBatchWalker(s, emit),
	}
	w.run = tk
	return tk
}

// webTicker is one run's tick state for the web generator.
type webTicker struct {
	w       *Web
	s       *sim.Sim
	arr     *stats.RNG
	svc     *stats.RNG
	service stats.Scaled
	emit    func(Request)
	wk      *batchWalker

	// prevs holds superseded walkers that are still draining (a batch can
	// outlive its tick only when a sampled arrival rounded up to exactly
	// the tick boundary); a snapshot must capture their cursors too.
	// Almost always empty.
	prevs []*batchWalker
}

// SampleCount draws the tick's realized request count: the rate is
// N(r, NoiseSigma·r) clamped at zero, times the interval, rounded.
func (tk *webTicker) SampleCount(now float64) int {
	mean := tk.w.MeanRate(now)
	rate := stats.TruncatedNormal{Mu: mean, Sigma: tk.w.NoiseSigma * mean}.Sample(tk.arr)
	return int(math.Round(rate * tk.w.Interval))
}

// Emit injects n requests uniformly over [now, now+Interval) through the
// pooled batch walker.
func (tk *webTicker) Emit(now float64, n int) {
	if n <= 0 {
		return
	}
	w := tk.w
	if len(tk.prevs) > 0 {
		// Prune walkers that finished draining since the last tick.
		live := tk.prevs[:0]
		for _, pw := range tk.prevs {
			if pw.active() {
				live = append(live, pw)
			}
		}
		tk.prevs = live
	}
	if tk.wk.active() {
		// A prior batch is still draining — possible only when a
		// sampled arrival rounded up to exactly the tick boundary.
		// Leave the old walker to finish and start a fresh one.
		tk.prevs = append(tk.prevs, tk.wk)
		tk.wk = newBatchWalker(tk.s, tk.emit)
	}
	batch := tk.wk.batch[:0]
	// Fused counting: bucket occupancy is tallied while sampling, so
	// startUniform skips its counting pass over the batch.
	counts, scale := tk.wk.precount(n, w.Interval)
	for i := 0; i < n; i++ {
		at := now + tk.arr.Float64()*w.Interval
		if counts != nil {
			b := int((at - now) * scale)
			if b >= n {
				b = n - 1
			} else if b < 0 {
				b = 0
			}
			counts[b]++
		}
		batch = append(batch, Request{
			ID:      w.ids.next(),
			Arrival: at,
			Service: tk.service.Sample(tk.svc),
		})
	}
	tk.wk.startUniform(batch, now, w.Interval)
}

// batchWalker drains a pre-sampled batch of requests through one pooled
// kernel event. The batch, scratch, and bucket-count slices are reused
// across ticks, so steady-state generation allocates nothing.
type batchWalker struct {
	s          *sim.Sim
	fire       sim.FireID // interned walkBatch callback for this walker
	emit       func(Request)
	batch      []Request
	idx        int
	scratch    []Request // bucket-sort output buffer, swapped with batch
	counts     []int32   // bucket occupancy / offset buffer
	precounted bool      // counts already hold the next batch's occupancy
}

// newBatchWalker creates a walker with its deferred-slot callback
// registered on the simulator.
func newBatchWalker(s *sim.Sim, emit func(Request)) *batchWalker {
	wk := &batchWalker{s: s, emit: emit}
	wk.fire = s.RegisterFire(walkBatch, wk)
	return wk
}

// precount returns the zeroed bucket-occupancy buffer and bucket scale
// for an n-element uniform batch, letting the generator tally occupancy
// while it samples instead of startUniform re-reading the whole batch.
// Returns nil when the batch will take the comparison-sort path.
func (wk *batchWalker) precount(n int, width float64) ([]int32, float64) {
	if n < 32 || !(width > 0) {
		return nil, 0
	}
	if cap(wk.counts) < n {
		wk.counts = make([]int32, n)
	}
	counts := wk.counts[:n]
	clear(counts)
	wk.precounted = true
	return counts, float64(n) / width
}

// active reports whether a previous batch is still being drained.
func (wk *batchWalker) active() bool { return wk.idx < len(wk.batch) }

// walkerSnap holds one walker's captured drain state. The batch and
// scratch buffers are overwritten by the next tick, so the snapshot
// copies the undrained remnant batch[idx:] — O(live batch), not O(tick
// history) — into a buffer the snap reuses across captures.
type walkerSnap struct {
	wk      *batchWalker
	remnant []Request
}

// snapshot captures wk's undrained remnant into sn.
func (wk *batchWalker) snapshot(sn *walkerSnap) {
	sn.wk = wk
	sn.remnant = append(sn.remnant[:0], wk.batch[wk.idx:]...)
}

// restore rewinds the captured walker: the remnant is copied back with
// the cursor renumbered to zero, which the pending walkBatch event (if
// the walker was active) indexes correctly because the event carries no
// cursor of its own. precounted is always false at event boundaries.
func (sn *walkerSnap) restore() {
	wk := sn.wk
	wk.batch = append(wk.batch[:0], sn.remnant...)
	wk.idx = 0
	wk.precounted = false
}

// requestCmp is the firing order: (arrival time, ID). IDs ascend in
// generation order and are unique, so this is a total order and every
// sort algorithm produces the same permutation — the (timestamp,
// insertion sequence) order the per-event scheduling produced.
func requestCmp(a, b Request) int {
	switch {
	case a.Arrival < b.Arrival:
		return -1
	case a.Arrival > b.Arrival:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// start sorts a batch with no distributional assumptions (trace replay)
// and schedules the first emission.
func (wk *batchWalker) start(batch []Request) {
	slices.SortFunc(batch, requestCmp)
	wk.launch(batch)
}

// startUniform sorts a batch whose arrivals are uniformly distributed
// over [lo, lo+width) — the web generator's shape — with a stable
// counting-sort scatter into one bucket per element followed by an
// insertion-sort repair pass. Expected bucket occupancy is 1, so the
// repair touches almost nothing and the whole sort is O(n) instead of
// O(n log n) comparison calls; this is the generator's dominant cost at
// scale. The scatter is stable and the repair breaks arrival ties by ID,
// so the permutation is identical to the comparison sort's.
func (wk *batchWalker) startUniform(batch []Request, lo, width float64) {
	n := len(batch)
	if n < 32 || !(width > 0) {
		wk.start(batch)
		return
	}
	nb := n
	if cap(wk.counts) < nb {
		wk.counts = make([]int32, nb)
	}
	counts := wk.counts[:nb]
	if cap(wk.scratch) < n {
		wk.scratch = make([]Request, n)
	}
	scratch := wk.scratch[:n]

	// Bucket index is monotone non-decreasing in the arrival time, so
	// inter-bucket order is correct by construction; intra-bucket order
	// starts as generation order (ascending ID) thanks to the stable
	// scatter.
	scale := float64(nb) / width
	if wk.precounted {
		// The generator already tallied occupancy while sampling.
		wk.precounted = false
	} else {
		clear(counts)
		for i := range batch {
			b := int((batch[i].Arrival - lo) * scale)
			if b >= nb {
				b = nb - 1
			} else if b < 0 {
				b = 0
			}
			counts[b]++
		}
	}
	// Occupancy → start offsets.
	var sum int32
	for b := range counts {
		c := counts[b]
		counts[b] = sum
		sum += c
	}
	for i := range batch {
		b := int((batch[i].Arrival - lo) * scale)
		if b >= nb {
			b = nb - 1
		} else if b < 0 {
			b = 0
		}
		scratch[counts[b]] = batch[i]
		counts[b]++
	}
	// Repair pass: inter-bucket order is correct by construction (equal
	// arrivals always share a bucket), so only buckets holding ≥2
	// elements can contain inversions. After the scatter counts[b] is the
	// end offset of bucket b, so the bucket ranges are recovered from the
	// counts scan alone — the single-occupancy majority of the batch is
	// never re-read. The total key (Arrival, ID) makes the sorted
	// permutation unique, so this yields exactly the comparison sort's
	// order.
	start := int32(0)
	for b := range counts {
		end := counts[b]
		for i := start + 1; i < end; i++ {
			q := scratch[i]
			j := i - 1
			for j >= start && requestCmp(scratch[j], q) > 0 {
				scratch[j+1] = scratch[j]
				j--
			}
			scratch[j+1] = q
		}
		start = end
	}
	wk.scratch = batch // fully drained (or abandoned) — reuse next tick
	wk.launch(scratch)
}

// launch points the walker at a sorted batch and schedules the first
// emission.
func (wk *batchWalker) launch(batch []Request) {
	wk.batch = batch
	wk.idx = 0
	wk.s.AtFunc(batch[0].Arrival, walkBatch, wk)
}

// walkBatch emits requests in firing order. The successor's sequence
// number is reserved before emitting so it precedes anything the emission
// itself schedules (completions, scaling), mirroring the original
// all-upfront scheduling order. When the successor would be the very next
// event popped anyway — no pending event orders before (arrival,
// reserved seq) — the walker consumes it inline (clock advance + event
// count, no heap traffic) and keeps draining; otherwise it parks in the
// pending set under the reserved sequence number. Both paths are
// bit-identical to scheduling every step.
func walkBatch(a any) {
	wk := a.(*batchWalker)
	s := wk.s
	for {
		req := wk.batch[wk.idx]
		wk.idx++
		if wk.idx >= len(wk.batch) {
			wk.emit(req)
			return
		}
		next := wk.batch[wk.idx].Arrival
		seq := s.ReserveSeq()
		wk.emit(req)
		if pt, ps, ok := s.PeekNext(); ok && (pt < next || (pt == next && ps < seq)) {
			s.DeferReserved(next, seq, wk.fire)
			return
		}
		s.InlineFire(next, seq)
	}
}

// webSnap holds one captured web-generator state: the ID counter, the
// identity of the current walker (a later tick may have replaced it),
// and the drain state of every walker that was live at the capture.
type webSnap struct {
	ids   counter
	wk    *batchWalker
	cur   walkerSnap
	prevs []walkerSnap
}

// Snapshot implements Rewindable.
func (w *Web) Snapshot(store any) any {
	sn, _ := store.(*webSnap)
	if sn == nil {
		sn = new(webSnap)
	}
	sn.ids = w.ids
	tk := w.run
	if tk == nil {
		sn.wk = nil
		return sn
	}
	sn.wk = tk.wk
	tk.wk.snapshot(&sn.cur)
	sn.prevs = sn.prevs[:0]
	for _, pw := range tk.prevs {
		if !pw.active() {
			continue
		}
		if len(sn.prevs) < cap(sn.prevs) {
			sn.prevs = sn.prevs[:len(sn.prevs)+1]
		} else {
			sn.prevs = append(sn.prevs, walkerSnap{})
		}
		pw.snapshot(&sn.prevs[len(sn.prevs)-1])
	}
	return sn
}

// Restore implements Rewindable. Walkers created after the capture are
// left behind as garbage: the kernel restore already removed their
// events, so they are inert.
func (w *Web) Restore(store any) {
	sn := store.(*webSnap)
	w.ids = sn.ids
	tk := w.run
	if tk == nil || sn.wk == nil {
		return
	}
	tk.wk = sn.wk
	sn.cur.restore()
	tk.prevs = tk.prevs[:0]
	for i := range sn.prevs {
		sn.prevs[i].restore()
		tk.prevs = append(tk.prevs, sn.prevs[i].wk)
	}
}

// WebAnalyzer reproduces the paper's web workload analyzer: each day is
// divided into six periods — 11:30–12:30 (peak), 12:30–16:00 and
// 16:00–20:00 (decreasing), 20:00–02:00 (trough), 02:00–07:00 and
// 07:00–11:30 (increasing) — and before each period starts the analyzer
// alerts the load predictor with the expected arrival rate for the period.
// The estimate is the maximum of Equation 2 over the period (the load the
// fleet must be able to carry anywhere inside it), optionally inflated by
// Margin.
type WebAnalyzer struct {
	Model  *Web
	Margin float64 // relative safety margin on the estimate (default 0)

	// Horizon bounds the alert schedule; alerts stop after it. Zero
	// means one week.
	Horizon float64
}

// webPeriodStarts lists the six period boundaries as seconds of day.
var webPeriodStarts = []float64{
	2 * 3600,        // 02:00 — increasing
	7 * 3600,        // 07:00 — increasing
	11*3600 + 30*60, // 11:30 — peak
	12*3600 + 30*60, // 12:30 — decreasing
	16 * 3600,       // 16:00 — decreasing
	20 * 3600,       // 20:00 — trough (wraps past midnight)
}

// Start emits the initial estimate at t=0 and an alert at every period
// boundary up to the horizon.
func (a *WebAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = Week
	}
	// Initial estimate for the period containing t=0.
	alert(a.estimateAt(0))
	st := &webAlertState{a: a, s: s, alert: alert}
	for day := 0; ; day++ {
		base := float64(day) * Day
		if base > horizon {
			break
		}
		for _, tod := range webPeriodStarts {
			t := base + tod
			if t <= 0 || t > horizon {
				continue
			}
			s.AtFunc(t, fireWebAlert, st)
		}
	}
}

// webAlertState carries the analyzer and its sink to the shared
// period-boundary callback; the boundary time is read back from the
// kernel, which stores it exactly.
type webAlertState struct {
	a     *WebAnalyzer
	s     *sim.Sim
	alert func(lambda float64)
}

func fireWebAlert(arg any) {
	st := arg.(*webAlertState)
	st.alert(st.a.estimateAt(st.s.Now()))
}

// estimateAt returns the predicted rate for the period containing time t:
// the maximum of the model's mean rate over the period, inflated by
// Margin.
func (a *WebAnalyzer) estimateAt(t float64) float64 {
	start, end := webPeriodAround(t)
	max := 0.0
	// The rate curve is smooth; a 60 s scan of the period captures its
	// maximum to well under the model's own 5% noise.
	for x := start; x < end; x += 60 {
		if r := a.Model.MeanRate(x); r > max {
			max = r
		}
	}
	if r := a.Model.MeanRate(end); r > max {
		max = r
	}
	return max * (1 + a.Margin)
}

// webPeriodAround returns the [start, end] absolute times of the analyzer
// period containing t.
func webPeriodAround(t float64) (float64, float64) {
	base := math.Floor(t/Day) * Day
	tod := t - base
	// Period boundaries in ascending order over one day, with the trough
	// period wrapping to 02:00 the next day.
	b := webPeriodStarts
	switch {
	case tod < b[0]: // 00:00–02:00 belongs to the trough period started at 20:00 yesterday
		return base - Day + b[5], base + b[0]
	case tod < b[1]:
		return base + b[0], base + b[1]
	case tod < b[2]:
		return base + b[1], base + b[2]
	case tod < b[3]:
		return base + b[2], base + b[3]
	case tod < b[4]:
		return base + b[3], base + b[4]
	case tod < b[5]:
		return base + b[4], base + b[5]
	default: // 20:00–24:00, trough period extends to 02:00 next day
		return base + b[5], base + Day + b[0]
	}
}
