package workload

import (
	"math"
	"sort"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// Day length in seconds; the denominator of the paper's Equation 2.
const Day = 86400.0

// Week is seven days in seconds; the web scenario simulates one week.
const Week = 7 * Day

// DayRate holds the minimum and maximum requests/second of one weekday
// (one row of the paper's Table II).
type DayRate struct {
	Min, Max float64
}

// WikipediaRates is the paper's Table II: minimum and maximum number of
// requests per second on each week day of the web workload, indexed
// Sunday=0 through Saturday=6.
var WikipediaRates = [7]DayRate{
	{Min: 400, Max: 900},  // Sunday
	{Min: 500, Max: 1000}, // Monday
	{Min: 500, Max: 1200}, // Tuesday
	{Min: 500, Max: 1200}, // Wednesday
	{Min: 500, Max: 1200}, // Thursday
	{Min: 500, Max: 1200}, // Friday
	{Min: 500, Max: 1000}, // Saturday
}

// Monday is the weekday index the paper's web simulation starts on
// ("one week of requests ... starting at Monday 12 a.m.").
const Monday = 1

// Web is the paper's web workload (Section V-B1): a simplified English
// Wikipedia trace. The data center receives requests in batches every
// Interval seconds; the expected rate follows Equation 2 between the
// weekday's minimum and maximum with the trough at midnight and the peak
// at noon, the realized per-interval rate is normally distributed around
// it with relative standard deviation NoiseSigma, and each request's
// service time is BaseService inflated by U(0, Jitter).
type Web struct {
	Rates       [7]DayRate // per-weekday rate bounds (Table II)
	StartDay    int        // weekday at t=0, Sunday=0 (paper: Monday)
	Interval    float64    // arrival batch interval (paper: 60 s)
	NoiseSigma  float64    // relative σ of the per-interval rate (paper: 0.05)
	BaseService float64    // base request execution time (paper: 0.100 s)
	Jitter      float64    // uniform service inflation upper bound (paper: 0.10)
	Scale       float64    // load scale factor (1 = paper scale)

	ids counter
}

// NewWeb returns the paper's web workload at the given load scale
// (scale 1 reproduces the paper's ≈500 M requests per simulated week).
func NewWeb(scale float64) *Web {
	return &Web{
		Rates:       WikipediaRates,
		StartDay:    Monday,
		Interval:    60,
		NoiseSigma:  0.05,
		BaseService: 0.100,
		Jitter:      0.10,
		Scale:       scale,
	}
}

// MeanRate implements Equation 2: r = Rmin + (Rmax − Rmin)·sin(πt/86400)
// with t the second of the current day, scaled by the load factor.
func (w *Web) MeanRate(t float64) float64 {
	day := (w.StartDay + int(math.Floor(t/Day))) % 7
	if day < 0 {
		day += 7
	}
	tod := math.Mod(t, Day)
	if tod < 0 {
		tod += Day
	}
	r := w.Rates[day]
	return w.Scale * (r.Min + (r.Max-r.Min)*math.Sin(math.Pi*tod/Day))
}

// Start schedules one batch of arrivals every Interval. Within a batch the
// realized rate is N(r, NoiseSigma·r) clamped at zero and arrivals are
// spread uniformly over the interval.
//
// Arrival injection is batched: each tick pre-samples the whole interval's
// requests into a reusable slice (drawing from the RNG streams in exactly
// the order the per-event version did), sorts it by arrival time, and
// walks it with a single self-rescheduling kernel event. At full scale
// this replaces ≈500 M per-request events-plus-closures per simulated
// week with one pooled event and zero per-request allocations.
func (w *Web) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	arr := r.Split("web/arrivals")
	svc := r.Split("web/service")
	service := stats.Scaled{
		S:      stats.Uniform{Min: 1, Max: 1 + w.Jitter},
		Factor: w.BaseService,
	}
	wk := &batchWalker{s: s, emit: emit}
	s.Every(0, w.Interval, func(now float64) {
		mean := w.MeanRate(now)
		rate := stats.TruncatedNormal{Mu: mean, Sigma: w.NoiseSigma * mean}.Sample(arr)
		n := int(math.Round(rate * w.Interval))
		if n <= 0 {
			return
		}
		if wk.active() {
			// A prior batch is still draining — possible only when a
			// sampled arrival rounded up to exactly the tick boundary.
			// Leave the old walker to finish and start a fresh one.
			wk = &batchWalker{s: s, emit: emit}
		}
		batch := wk.batch[:0]
		for i := 0; i < n; i++ {
			at := now + arr.Float64()*w.Interval
			batch = append(batch, Request{
				ID:      w.ids.next(),
				Arrival: at,
				Service: service.Sample(svc),
			})
		}
		wk.start(batch)
	})
}

// batchWalker drains a pre-sampled batch of requests through one pooled
// kernel event. The batch slice is reused across ticks, so steady-state
// generation allocates nothing.
type batchWalker struct {
	s     *sim.Sim
	emit  func(Request)
	batch []Request
	idx   int
}

// active reports whether a previous batch is still being drained.
func (wk *batchWalker) active() bool { return wk.idx < len(wk.batch) }

// start sorts the batch into firing order and schedules the first
// emission. Ties on the arrival time preserve generation order (IDs
// ascend in generation order), matching the (timestamp, insertion
// sequence) order the per-event scheduling produced.
func (wk *batchWalker) start(batch []Request) {
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].Arrival != batch[j].Arrival {
			return batch[i].Arrival < batch[j].Arrival
		}
		return batch[i].ID < batch[j].ID
	})
	wk.batch = batch
	wk.idx = 0
	wk.s.AtFunc(batch[0].Arrival, walkBatch, wk)
}

// walkBatch emits the current request and reschedules itself for the
// next. The successor is scheduled before emitting so its insertion
// sequence precedes anything the emission itself schedules (completions,
// scaling), mirroring the original all-upfront scheduling order.
func walkBatch(a any) {
	wk := a.(*batchWalker)
	req := wk.batch[wk.idx]
	wk.idx++
	if wk.idx < len(wk.batch) {
		wk.s.AtFunc(wk.batch[wk.idx].Arrival, walkBatch, wk)
	}
	wk.emit(req)
}

// WebAnalyzer reproduces the paper's web workload analyzer: each day is
// divided into six periods — 11:30–12:30 (peak), 12:30–16:00 and
// 16:00–20:00 (decreasing), 20:00–02:00 (trough), 02:00–07:00 and
// 07:00–11:30 (increasing) — and before each period starts the analyzer
// alerts the load predictor with the expected arrival rate for the period.
// The estimate is the maximum of Equation 2 over the period (the load the
// fleet must be able to carry anywhere inside it), optionally inflated by
// Margin.
type WebAnalyzer struct {
	Model  *Web
	Margin float64 // relative safety margin on the estimate (default 0)

	// Horizon bounds the alert schedule; alerts stop after it. Zero
	// means one week.
	Horizon float64
}

// webPeriodStarts lists the six period boundaries as seconds of day.
var webPeriodStarts = []float64{
	2 * 3600,        // 02:00 — increasing
	7 * 3600,        // 07:00 — increasing
	11*3600 + 30*60, // 11:30 — peak
	12*3600 + 30*60, // 12:30 — decreasing
	16 * 3600,       // 16:00 — decreasing
	20 * 3600,       // 20:00 — trough (wraps past midnight)
}

// Start emits the initial estimate at t=0 and an alert at every period
// boundary up to the horizon.
func (a *WebAnalyzer) Start(s *sim.Sim, alert func(lambda float64)) {
	horizon := a.Horizon
	if horizon <= 0 {
		horizon = Week
	}
	// Initial estimate for the period containing t=0.
	alert(a.estimateAt(0))
	for day := 0; ; day++ {
		base := float64(day) * Day
		if base > horizon {
			break
		}
		for _, tod := range webPeriodStarts {
			t := base + tod
			if t <= 0 || t > horizon {
				continue
			}
			s.At(t, func() { alert(a.estimateAt(t)) })
		}
	}
}

// estimateAt returns the predicted rate for the period containing time t:
// the maximum of the model's mean rate over the period, inflated by
// Margin.
func (a *WebAnalyzer) estimateAt(t float64) float64 {
	start, end := webPeriodAround(t)
	max := 0.0
	// The rate curve is smooth; a 60 s scan of the period captures its
	// maximum to well under the model's own 5% noise.
	for x := start; x < end; x += 60 {
		if r := a.Model.MeanRate(x); r > max {
			max = r
		}
	}
	if r := a.Model.MeanRate(end); r > max {
		max = r
	}
	return max * (1 + a.Margin)
}

// webPeriodAround returns the [start, end] absolute times of the analyzer
// period containing t.
func webPeriodAround(t float64) (float64, float64) {
	base := math.Floor(t/Day) * Day
	tod := t - base
	// Period boundaries in ascending order over one day, with the trough
	// period wrapping to 02:00 the next day.
	b := webPeriodStarts
	switch {
	case tod < b[0]: // 00:00–02:00 belongs to the trough period started at 20:00 yesterday
		return base - Day + b[5], base + b[0]
	case tod < b[1]:
		return base + b[0], base + b[1]
	case tod < b[2]:
		return base + b[1], base + b[2]
	case tod < b[3]:
		return base + b[2], base + b[3]
	case tod < b[4]:
		return base + b[3], base + b[4]
	case tod < b[5]:
		return base + b[4], base + b[5]
	default: // 20:00–24:00, trough period extends to 02:00 next day
		return base + b[5], base + Day + b[0]
	}
}
