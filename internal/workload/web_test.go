package workload

import (
	"math"
	"testing"
	"testing/quick"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// TestTableII pins the web model's constants to the paper's Table II.
func TestTableII(t *testing.T) {
	want := [7]DayRate{
		{400, 900}, {500, 1000}, {500, 1200}, {500, 1200},
		{500, 1200}, {500, 1200}, {500, 1000},
	}
	if WikipediaRates != want {
		t.Fatalf("Table II constants drifted: %v", WikipediaRates)
	}
}

func TestWebMeanRateEquation2(t *testing.T) {
	w := NewWeb(1)
	// t=0 is Monday midnight: the trough, Rmin = 500.
	if got := w.MeanRate(0); math.Abs(got-500) > 1e-9 {
		t.Fatalf("Monday midnight rate = %v, want 500", got)
	}
	// Monday noon: the peak, Rmax = 1000.
	if got := w.MeanRate(12 * 3600); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("Monday noon rate = %v, want 1000", got)
	}
	// Tuesday noon: Rmax = 1200.
	if got := w.MeanRate(Day + 12*3600); math.Abs(got-1200) > 1e-9 {
		t.Fatalf("Tuesday noon rate = %v, want 1200", got)
	}
	// Day 6 after Monday start is Sunday: noon Rmax = 900.
	if got := w.MeanRate(6*Day + 12*3600); math.Abs(got-900) > 1e-9 {
		t.Fatalf("Sunday noon rate = %v, want 900", got)
	}
	// 6 a.m. Monday: 500 + 500·sin(π/4).
	want := 500 + 500*math.Sin(math.Pi/4)
	if got := w.MeanRate(6 * 3600); math.Abs(got-want) > 1e-9 {
		t.Fatalf("6 a.m. rate = %v, want %v", got, want)
	}
}

func TestWebMeanRateScales(t *testing.T) {
	full := NewWeb(1)
	tenth := NewWeb(0.1)
	for _, tt := range []float64{0, 3 * 3600, Day + 15*3600, 4 * Day} {
		if got, want := tenth.MeanRate(tt), 0.1*full.MeanRate(tt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("scaled rate at %v = %v, want %v", tt, got, want)
		}
	}
}

func TestWebMeanRateNegativeTime(t *testing.T) {
	w := NewWeb(1)
	// −4 h is Sunday 20:00: 400 + 500·sin(π·5/6) = 650.
	if got := w.MeanRate(-4 * 3600); math.Abs(got-650) > 1e-9 {
		t.Fatalf("Sunday 20:00 rate = %v, want 650", got)
	}
}

func TestWebStartGeneratesExpectedVolume(t *testing.T) {
	w := NewWeb(0.01)
	s := sim.New()
	r := stats.NewRNG(1)
	var n int
	var expected float64
	w.Start(s, r, func(q Request) {
		n++
		if q.Service < 0.100 || q.Service > 0.110 {
			t.Fatalf("service time %v outside [0.100, 0.110]", q.Service)
		}
		if q.Arrival < 0 || q.Arrival > 2*3600+60 {
			t.Fatalf("arrival %v outside horizon", q.Arrival)
		}
	})
	horizon := 2 * 3600.0
	for x := 0.0; x < horizon; x += 60 {
		expected += w.MeanRate(x) * 60
	}
	s.RunUntil(horizon)
	if math.Abs(float64(n)-expected)/expected > 0.05 {
		t.Fatalf("generated %d requests, expected ≈%.0f", n, expected)
	}
}

func TestWebArrivalsEmittedInOrder(t *testing.T) {
	w := NewWeb(0.01)
	s := sim.New()
	last := -1.0
	w.Start(s, stats.NewRNG(2), func(q Request) {
		if q.Arrival < last {
			t.Fatalf("arrival %v before previous %v", q.Arrival, last)
		}
		last = q.Arrival
	})
	s.RunUntil(1800)
}

func TestWebDeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		w := NewWeb(0.005)
		s := sim.New()
		var ids []uint64
		w.Start(s, stats.NewRNG(7), func(q Request) { ids = append(ids, q.ID) })
		s.RunUntil(600)
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replication lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replications diverge at %d", i)
		}
	}
}

func TestWebAnalyzerAlertSchedule(t *testing.T) {
	w := NewWeb(1)
	a := &WebAnalyzer{Model: w, Horizon: Day}
	s := sim.New()
	type alert struct{ t, lambda float64 }
	var alerts []alert
	a.Start(s, func(l float64) { alerts = append(alerts, alert{s.Now(), l}) })
	s.Run()
	// Initial alert plus six period boundaries in one day.
	if len(alerts) != 7 {
		t.Fatalf("got %d alerts, want 7: %+v", len(alerts), alerts)
	}
	// The 11:30 alert must carry (approximately) the daily maximum.
	var peak float64
	for _, al := range alerts {
		if al.t == 11*3600+30*60 {
			peak = al.lambda
		}
	}
	if math.Abs(peak-1000) > 1 {
		t.Fatalf("peak-period estimate = %v, want ≈1000 (Monday Rmax)", peak)
	}
	// Every estimate must upper-bound the model rate over its period
	// (checked coarsely: estimate ≥ rate at the alert instant).
	for _, al := range alerts {
		if al.lambda+1e-6 < w.MeanRate(al.t) {
			t.Fatalf("estimate %v at t=%v below instantaneous rate %v", al.lambda, al.t, w.MeanRate(al.t))
		}
	}
}

func TestWebAnalyzerMargin(t *testing.T) {
	w := NewWeb(1)
	plain := &WebAnalyzer{Model: w, Horizon: 1}
	padded := &WebAnalyzer{Model: w, Margin: 0.25, Horizon: 1}
	get := func(a *WebAnalyzer) float64 {
		s := sim.New()
		var first float64
		a.Start(s, func(l float64) { first = l })
		return first
	}
	if got, want := get(padded), 1.25*get(plain); math.Abs(got-want) > 1e-9 {
		t.Fatalf("margin not applied: %v want %v", got, want)
	}
}

// Property: every time in the first week falls inside exactly the period
// webPeriodAround reports, and periods tile the timeline.
func TestWebPeriodAroundProperty(t *testing.T) {
	f := func(raw uint32) bool {
		tt := float64(raw%uint32(Week)) + float64(raw%97)/97
		start, end := webPeriodAround(tt)
		if !(start <= tt && tt < end) {
			return false
		}
		// Period length is positive and at most 6.5 hours (20:00–02:30
		// is the longest, 6 h).
		if end-start <= 0 || end-start > 6.5*3600 {
			return false
		}
		// Adjacent: the instant before start belongs to the previous
		// period ending exactly at start.
		if start > 0 {
			_, prevEnd := webPeriodAround(start - 1e-3)
			if math.Abs(prevEnd-start) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
