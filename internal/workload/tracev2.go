package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"vmprov/internal/trace"
)

// TraceV2Params parameterize the "tracev2" kind: bit-exact replay of a
// recorded arrival trace in the versioned v2 format (see internal/trace).
// Path is resolved relative to the working directory; the file is read
// and validated when the spec compiles, so malformed traces fail at
// parse time with the decoder's line-numbered error.
type TraceV2Params struct {
	Path   string       `json:"path"`
	Window WindowParams `json:"window,omitzero"`
}

// RequestsFromV2 converts decoded v2 records to replayable requests,
// stamping sequential IDs in record order. IDs only order same-instant
// arrivals and tag trace events, so re-stamping them keeps a replay
// bit-identical to the run that recorded the trace.
func RequestsFromV2(recs []trace.RecordV2) []Request {
	reqs := make([]Request, len(recs))
	for i, rec := range recs {
		reqs[i] = Request{
			ID:      uint64(i + 1),
			Arrival: rec.T,
			Service: rec.Size,
			Class:   rec.Class,
			Client:  rec.Client,
		}
	}
	return reqs
}

// ClientInfosFromV2 converts a v2 header roster to workload client
// cohorts, preserving header order.
func ClientInfosFromV2(clients []trace.ClientV2) []ClientInfo {
	if len(clients) == 0 {
		return nil
	}
	infos := make([]ClientInfo, len(clients))
	for i, c := range clients {
		infos[i] = ClientInfo{Name: c.Name, SLOClass: c.SLOClass}
	}
	return infos
}

func init() {
	Register("tracev2", func(raw json.RawMessage) (*Builder, error) {
		var p TraceV2Params
		if err := DecodeParams(raw, &p); err != nil {
			return nil, err
		}
		if p.Path == "" {
			return nil, fmt.Errorf("tracev2 needs a path to a recorded trace")
		}
		f, err := os.Open(p.Path)
		if err != nil {
			return nil, fmt.Errorf("tracev2: %w", err)
		}
		defer f.Close()
		hdr, recs, err := trace.DecodeV2(f)
		if err != nil {
			return nil, fmt.Errorf("tracev2 %s: %w", p.Path, err)
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("tracev2 %s: trace has no records", p.Path)
		}
		reqs := RequestsFromV2(recs)
		return &Builder{
			NewSource:   func() Source { return &TraceSource{Requests: reqs} },
			NewAnalyzer: func(Source, float64) Analyzer { return p.Window.analyzer() },
			Clients:     ClientInfosFromV2(hdr.Clients),
		}, nil
	})
}
