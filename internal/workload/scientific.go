package workload

import (
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// Scientific is the paper's scientific workload (Section V-B2): execution
// requests for computationally intensive tasks, modeled after the
// Bag-of-Tasks grid workload of Iosup et al.
//
// During peak hours (08:00–17:00) BoT jobs arrive with Weibull(4.25, 7.86)
// interarrival times (seconds). Off peak, the number of jobs per 30-minute
// period follows Weibull(1.79, 24.16) with the jobs spaced equally inside
// the period. Every job carries Weibull(1.76, 2.11) tasks (at least one),
// each task being one request of 300 s base service time inflated by
// U(0, 0.1).
type Scientific struct {
	PeakStart     float64       // second of day peak begins (paper: 08:00)
	PeakEnd       float64       // second of day peak ends (paper: 17:00)
	Interarrival  stats.Weibull // peak job interarrival (paper: 4.25, 7.86)
	OffPeakJobs   stats.Weibull // jobs per off-peak period (paper: 1.79, 24.16)
	OffPeakPeriod float64       // off-peak accounting period (paper: 1800 s)
	Size          stats.Weibull // tasks per job (paper: 1.76, 2.11)
	BaseService   float64       // base task execution time (paper: 300 s)
	Jitter        float64       // uniform service inflation bound (paper: 0.10)
	Scale         float64       // load scale factor (1 = paper scale)

	ids counter
	run *sciRun // current replication's planner state, retained for snapshot
}

// NewScientific returns the paper's scientific workload at the given load
// scale.
func NewScientific(scale float64) *Scientific {
	return &Scientific{
		PeakStart:     8 * 3600,
		PeakEnd:       17 * 3600,
		Interarrival:  stats.Weibull{Shape: 4.25, Scale: 7.86},
		OffPeakJobs:   stats.Weibull{Shape: 1.79, Scale: 24.16},
		OffPeakPeriod: 1800,
		Size:          stats.Weibull{Shape: 1.76, Scale: 2.11},
		BaseService:   300,
		Jitter:        0.10,
		Scale:         scale,
	}
}

// inPeak reports whether second-of-day tod falls in the peak window.
func (sc *Scientific) inPeak(tod float64) bool {
	return tod >= sc.PeakStart && tod < sc.PeakEnd
}

// MeanTasks returns the analytic mean of the per-job task count
// max(1, ⌊X⌋) for X ~ Size: E = P(X<1) + Σ_{n≥1} P(X≥n). For the paper's
// parameters this is ≈1.62 tasks per job.
func (sc *Scientific) MeanTasks() float64 {
	cdf := func(x float64) float64 {
		return 1 - math.Exp(-math.Pow(x/sc.Size.Scale, sc.Size.Shape))
	}
	mean := cdf(1) // the sub-one mass is promoted to one task
	for n := 1.0; ; n++ {
		tail := 1 - cdf(n)
		mean += tail
		if tail < 1e-12 {
			return mean
		}
	}
}

// MeanRate returns the analytic mean task arrival rate at time t: during
// peak, E[tasks]/E[interarrival]; off peak, E[jobs]·E[tasks]/period — the
// curve behind the paper's Figure 4.
func (sc *Scientific) MeanRate(t float64) float64 {
	tod := math.Mod(t, Day)
	if sc.inPeak(tod) {
		return sc.Scale * sc.MeanTasks() / sc.Interarrival.Mean()
	}
	return sc.Scale * sc.OffPeakJobs.Mean() * sc.MeanTasks() / sc.OffPeakPeriod
}

// Start schedules the arrival process. Scaling multiplies the *job* rate
// (interarrivals shrink, off-peak job counts grow) while task sizes and
// service times keep the paper's distributions, preserving per-instance
// queueing behavior.
func (sc *Scientific) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	run := &sciRun{
		sc:   sc,
		s:    s,
		emit: emit,
		arr:  r.Split("sci/arrivals"),
		size: r.Split("sci/size"),
		svc:  r.Split("sci/service"),
		service: stats.Scaled{
			S:      stats.Uniform{Min: 1, Max: 1 + sc.Jitter},
			Factor: sc.BaseService,
		},
	}
	sc.run = run
	run.planDay()
}

// sciSnap holds one captured scientific-source state.
type sciSnap struct {
	ids counter
	day int
}

// Snapshot implements Rewindable: the planner's cross-event state is the
// ID counter and the next day to plan; everything else lives in the
// kernel and the RNG tree.
func (sc *Scientific) Snapshot(store any) any {
	sn, _ := store.(*sciSnap)
	if sn == nil {
		sn = new(sciSnap)
	}
	sn.ids = sc.ids
	if sc.run != nil {
		sn.day = sc.run.day
	}
	return sn
}

// Restore implements Rewindable.
func (sc *Scientific) Restore(store any) {
	sn := store.(*sciSnap)
	sc.ids = sn.ids
	if sc.run != nil {
		sc.run.day = sn.day
	}
}

// sciRun is one replication's arrival-process state. The planner, the
// off-peak batches, and the peak chain all schedule through package-level
// callbacks sharing this single struct as their kernel arg, so the
// steady-state arrival machinery allocates nothing per event; only each
// task's arrival carries its own payload (sciTask). Callbacks that used
// to capture their fire time read s.Now() instead, which returns the
// stored event time bit-exactly.
type sciRun struct {
	sc      *Scientific
	s       *sim.Sim
	emit    func(Request)
	arr     *stats.RNG
	size    *stats.RNG
	svc     *stats.RNG
	service stats.Scaled
	day     int // next day to plan
}

// sciTask carries one task's request to its arrival event.
type sciTask struct {
	run *sciRun
	req Request
}

// emitSciTask delivers one task arrival.
func emitSciTask(a any) {
	t := a.(*sciTask)
	t.run.emit(t.req)
}

// emitJob samples a job's task count and schedules each task's arrival
// at time at.
func (r *sciRun) emitJob(at float64) {
	// Truncate, don't round: the size class is the integer part of
	// the Weibull variate (at least one task). This reproduces the
	// paper's reported volume of ≈8286 requests per simulated day;
	// rounding would inflate the daily volume by ≈17%.
	tasks := int(r.sc.Size.Sample(r.size))
	if tasks < 1 {
		tasks = 1
	}
	for i := 0; i < tasks; i++ {
		req := Request{
			ID:      r.sc.ids.next(),
			Arrival: at,
			Service: r.service.Sample(r.svc),
		}
		r.s.AtFunc(at, emitSciTask, &sciTask{run: r, req: req})
	}
}

// sciChain advances the peak-hours self-scheduling interarrival chain,
// restarted at each day's peak start by the period planner.
func sciChain(a any) {
	r := a.(*sciRun)
	now := r.s.Now()
	if !r.sc.inPeak(math.Mod(now, Day)) {
		return // peak ended; planner restarts the chain tomorrow
	}
	r.emitJob(now)
	gap := r.sc.Interarrival.Sample(r.arr) / r.sc.Scale
	r.s.ScheduleFunc(gap, sciChain, r)
}

// sciStartPeak opens a day's peak window: the first peak job arrives one
// interarrival after the window opens.
func sciStartPeak(a any) {
	r := a.(*sciRun)
	r.s.ScheduleFunc(r.sc.Interarrival.Sample(r.arr)/r.sc.Scale, sciChain, r)
}

// sciJob fires one off-peak job arrival at the current instant.
func sciJob(a any) {
	r := a.(*sciRun)
	r.emitJob(r.s.Now())
}

// sciPeriod opens one off-peak period at the current instant.
func sciPeriod(a any) {
	r := a.(*sciRun)
	r.offPeakPeriod(r.s.Now())
}

// offPeakPeriod emits one batch of evenly spaced jobs for the 30-minute
// period starting at start.
func (r *sciRun) offPeakPeriod(start float64) {
	n := int(math.Round(r.sc.OffPeakJobs.Sample(r.arr) * r.sc.Scale))
	if n <= 0 {
		return
	}
	gap := r.sc.OffPeakPeriod / float64(n)
	for i := 0; i < n; i++ {
		r.s.AtFunc(start+float64(i)*gap, sciJob, r)
	}
}

// sciPlanDay plans the next day at its first instant.
func sciPlanDay(a any) {
	a.(*sciRun).planDay()
}

// planDay walks one day's schedule — off-peak periods cover
// [0, PeakStart) and [PeakEnd, Day); the peak chain starts at
// PeakStart — then schedules itself for the following day, planning
// lazily.
func (r *sciRun) planDay() {
	dayBase := float64(r.day) * Day
	for tod := 0.0; tod < Day; tod += r.sc.OffPeakPeriod {
		if r.sc.inPeak(tod) {
			continue
		}
		t := dayBase + tod
		if t == 0 {
			r.offPeakPeriod(0)
		} else {
			r.s.AtFunc(t, sciPeriod, r)
		}
	}
	r.s.AtFunc(dayBase+r.sc.PeakStart, sciStartPeak, r)
	r.day++
	r.s.AtFunc(float64(r.day)*Day, sciPlanDay, r)
}
