package workload

import (
	"math"

	"vmprov/internal/sim"
	"vmprov/internal/stats"
)

// Scientific is the paper's scientific workload (Section V-B2): execution
// requests for computationally intensive tasks, modeled after the
// Bag-of-Tasks grid workload of Iosup et al.
//
// During peak hours (08:00–17:00) BoT jobs arrive with Weibull(4.25, 7.86)
// interarrival times (seconds). Off peak, the number of jobs per 30-minute
// period follows Weibull(1.79, 24.16) with the jobs spaced equally inside
// the period. Every job carries Weibull(1.76, 2.11) tasks (at least one),
// each task being one request of 300 s base service time inflated by
// U(0, 0.1).
type Scientific struct {
	PeakStart     float64       // second of day peak begins (paper: 08:00)
	PeakEnd       float64       // second of day peak ends (paper: 17:00)
	Interarrival  stats.Weibull // peak job interarrival (paper: 4.25, 7.86)
	OffPeakJobs   stats.Weibull // jobs per off-peak period (paper: 1.79, 24.16)
	OffPeakPeriod float64       // off-peak accounting period (paper: 1800 s)
	Size          stats.Weibull // tasks per job (paper: 1.76, 2.11)
	BaseService   float64       // base task execution time (paper: 300 s)
	Jitter        float64       // uniform service inflation bound (paper: 0.10)
	Scale         float64       // load scale factor (1 = paper scale)

	ids counter
}

// NewScientific returns the paper's scientific workload at the given load
// scale.
func NewScientific(scale float64) *Scientific {
	return &Scientific{
		PeakStart:     8 * 3600,
		PeakEnd:       17 * 3600,
		Interarrival:  stats.Weibull{Shape: 4.25, Scale: 7.86},
		OffPeakJobs:   stats.Weibull{Shape: 1.79, Scale: 24.16},
		OffPeakPeriod: 1800,
		Size:          stats.Weibull{Shape: 1.76, Scale: 2.11},
		BaseService:   300,
		Jitter:        0.10,
		Scale:         scale,
	}
}

// inPeak reports whether second-of-day tod falls in the peak window.
func (sc *Scientific) inPeak(tod float64) bool {
	return tod >= sc.PeakStart && tod < sc.PeakEnd
}

// MeanTasks returns the analytic mean of the per-job task count
// max(1, ⌊X⌋) for X ~ Size: E = P(X<1) + Σ_{n≥1} P(X≥n). For the paper's
// parameters this is ≈1.62 tasks per job.
func (sc *Scientific) MeanTasks() float64 {
	cdf := func(x float64) float64 {
		return 1 - math.Exp(-math.Pow(x/sc.Size.Scale, sc.Size.Shape))
	}
	mean := cdf(1) // the sub-one mass is promoted to one task
	for n := 1.0; ; n++ {
		tail := 1 - cdf(n)
		mean += tail
		if tail < 1e-12 {
			return mean
		}
	}
}

// MeanRate returns the analytic mean task arrival rate at time t: during
// peak, E[tasks]/E[interarrival]; off peak, E[jobs]·E[tasks]/period — the
// curve behind the paper's Figure 4.
func (sc *Scientific) MeanRate(t float64) float64 {
	tod := math.Mod(t, Day)
	if sc.inPeak(tod) {
		return sc.Scale * sc.MeanTasks() / sc.Interarrival.Mean()
	}
	return sc.Scale * sc.OffPeakJobs.Mean() * sc.MeanTasks() / sc.OffPeakPeriod
}

// Start schedules the arrival process. Scaling multiplies the *job* rate
// (interarrivals shrink, off-peak job counts grow) while task sizes and
// service times keep the paper's distributions, preserving per-instance
// queueing behavior.
func (sc *Scientific) Start(s *sim.Sim, r *stats.RNG, emit func(Request)) {
	arr := r.Split("sci/arrivals")
	size := r.Split("sci/size")
	svc := r.Split("sci/service")
	service := stats.Scaled{
		S:      stats.Uniform{Min: 1, Max: 1 + sc.Jitter},
		Factor: sc.BaseService,
	}

	emitJob := func(at float64) {
		// Truncate, don't round: the size class is the integer part of
		// the Weibull variate (at least one task). This reproduces the
		// paper's reported volume of ≈8286 requests per simulated day;
		// rounding would inflate the daily volume by ≈17%.
		tasks := int(sc.Size.Sample(size))
		if tasks < 1 {
			tasks = 1
		}
		for i := 0; i < tasks; i++ {
			req := Request{
				ID:      sc.ids.next(),
				Arrival: at,
				Service: service.Sample(svc),
			}
			s.At(at, func() { emit(req) })
		}
	}

	// Peak hours: a self-scheduling interarrival chain, restarted at each
	// day's peak start by the period planner below.
	var chain func()
	chain = func() {
		now := s.Now()
		if !sc.inPeak(math.Mod(now, Day)) {
			return // peak ended; planner restarts the chain tomorrow
		}
		emitJob(now)
		gap := sc.Interarrival.Sample(arr) / sc.Scale
		s.Schedule(gap, chain)
	}

	// Off-peak: one batch of evenly spaced jobs per 30-minute period.
	offPeakPeriod := func(start float64) {
		n := int(math.Round(sc.OffPeakJobs.Sample(arr) * sc.Scale))
		if n <= 0 {
			return
		}
		gap := sc.OffPeakPeriod / float64(n)
		for i := 0; i < n; i++ {
			at := start + float64(i)*gap
			s.At(at, func() { emitJob(at) })
		}
	}

	// Period planner: walk each day's schedule. Off-peak periods cover
	// [0, PeakStart) and [PeakEnd, Day); the peak chain starts at
	// PeakStart.
	plan := func(dayBase float64) {
		for tod := 0.0; tod < Day; tod += sc.OffPeakPeriod {
			if sc.inPeak(tod) {
				continue
			}
			t := dayBase + tod
			if t == 0 {
				offPeakPeriod(0)
			} else {
				s.At(t, func() { offPeakPeriod(t) })
			}
		}
		s.At(dayBase+sc.PeakStart, func() {
			// First peak job arrives one interarrival after the window
			// opens.
			s.Schedule(sc.Interarrival.Sample(arr)/sc.Scale, chain)
		})
	}

	// Plan enough days lazily: plan day d at its start.
	var planDay func(d int)
	planDay = func(d int) {
		plan(float64(d) * Day)
		s.At(float64(d+1)*Day, func() { planDay(d + 1) })
	}
	planDay(0)
}
