package cloud

import (
	"fmt"
	"strings"
)

// placementNames maps each placement policy to its canonical spec name.
var placementNames = map[Placement]string{
	LeastLoaded: "least-loaded",
	FirstFit:    "first-fit",
	RoundRobin:  "round-robin",
}

// String returns the placement's canonical spec name.
func (p Placement) String() string {
	if n, ok := placementNames[p]; ok {
		return n
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// PlacementNames lists the resolvable placement policy names in
// definition order.
func PlacementNames() []string {
	return []string{
		placementNames[LeastLoaded],
		placementNames[FirstFit],
		placementNames[RoundRobin],
	}
}

// ParsePlacement resolves a placement policy by name. The empty string
// resolves to the paper's default (least-loaded); an unknown name lists
// the valid ones.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "", placementNames[LeastLoaded]:
		return LeastLoaded, nil
	case placementNames[FirstFit]:
		return FirstFit, nil
	case placementNames[RoundRobin]:
		return RoundRobin, nil
	}
	return LeastLoaded, fmt.Errorf("cloud: unknown placement %q (valid: %s)",
		name, strings.Join(PlacementNames(), ", "))
}

// MarshalText encodes the placement as its name, so specs embedding a
// Placement serialize to readable JSON.
func (p Placement) MarshalText() ([]byte, error) {
	n, ok := placementNames[p]
	if !ok {
		return nil, fmt.Errorf("cloud: cannot marshal unknown placement %d", int(p))
	}
	return []byte(n), nil
}

// UnmarshalText decodes a placement name.
func (p *Placement) UnmarshalText(text []byte) error {
	v, err := ParsePlacement(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
