package cloud

import (
	"errors"
	"fmt"
)

// Federation is the paper's Cloud computing system P = (c₁, c₂, …, cₙ):
// a set of IaaS clouds the application provider can draw VMs from. VMs
// are placed in the member with the most spare capacity for the requested
// spec (ties broken by member order), so load spreads across providers.
// Federation implements Provider, so it can back a Provisioner directly.
type Federation struct {
	members []*Datacenter
	nextID  int
	placed  map[int]fedVM
}

type fedVM struct {
	member  int
	localID int
}

// NewFederation groups the given data centers. At least one is required.
func NewFederation(members ...*Datacenter) *Federation {
	if len(members) == 0 {
		panic("cloud: federation needs at least one member")
	}
	return &Federation{members: members, placed: make(map[int]fedVM)}
}

// Reset rewinds the federation and every member data center to their
// just-constructed state, keeping allocated structures for reuse.
func (f *Federation) Reset() {
	f.nextID = 0
	clear(f.placed)
	for _, dc := range f.members {
		dc.Reset()
	}
}

// FedSnap holds one captured Federation state, member data centers
// included. The zero value is ready to use; buffers are reused.
type FedSnap struct {
	nextID  int
	placed  map[int]fedVM
	members []DCSnap
}

// Snapshot captures the federation's routing state and every member data
// center into snap, reusing snap's buffers.
func (f *Federation) Snapshot(snap *FedSnap) {
	snap.nextID = f.nextID
	if snap.placed == nil {
		snap.placed = make(map[int]fedVM, len(f.placed))
	} else {
		clear(snap.placed)
	}
	for id, fv := range f.placed {
		snap.placed[id] = fv
	}
	if len(snap.members) < len(f.members) {
		snap.members = append(snap.members, make([]DCSnap, len(f.members)-len(snap.members))...)
	}
	for i, dc := range f.members {
		dc.Snapshot(&snap.members[i])
	}
}

// Restore rewinds the federation and every member to a state captured
// from it by Snapshot.
func (f *Federation) Restore(snap *FedSnap) {
	f.nextID = snap.nextID
	clear(f.placed)
	for id, fv := range snap.placed {
		f.placed[id] = fv
	}
	for i, dc := range f.members {
		dc.Restore(&snap.members[i])
	}
}

// Members returns the number of member clouds.
func (f *Federation) Members() int { return len(f.members) }

// Member returns the i-th member data center.
func (f *Federation) Member(i int) *Datacenter { return f.members[i] }

// Provision places the VM in the member with the most remaining capacity
// for the spec. The returned VM carries a federation-scoped ID; Host is
// the member index (the per-member host is an infrastructure detail the
// application provisioner never sees, per the paper's information model).
func (f *Federation) Provision(now float64, spec VMSpec) (VM, error) {
	best, bestCap := -1, 0
	for i, dc := range f.members {
		if c := dc.Capacity(spec); c > bestCap {
			best, bestCap = i, c
		}
	}
	if best == -1 {
		return VM{}, fmt.Errorf("cloud: federation exhausted across %d member(s): %w", len(f.members), ErrNoCapacity)
	}
	return f.provisionIn(now, best, spec)
}

// Zones returns the number of failure domains — one per member cloud.
func (f *Federation) Zones() int { return len(f.members) }

// ProvisionIn places the VM inside member zone only, implementing
// ZonedProvider. A full member reports ErrNoCapacity (wrapped with the
// zone index) so zone-aware callers can fail over to a healthy member.
func (f *Federation) ProvisionIn(now float64, zone int, spec VMSpec) (VM, error) {
	if zone < 0 || zone >= len(f.members) {
		return VM{}, fmt.Errorf("cloud: federation has no zone %d (members: %d)", zone, len(f.members))
	}
	return f.provisionIn(now, zone, spec)
}

func (f *Federation) provisionIn(now float64, member int, spec VMSpec) (VM, error) {
	vm, err := f.members[member].Provision(now, spec)
	if err != nil {
		if errors.Is(err, ErrNoCapacity) {
			return VM{}, fmt.Errorf("cloud: federation member %d exhausted: %w", member, ErrNoCapacity)
		}
		return VM{}, err
	}
	f.nextID++
	f.placed[f.nextID] = fedVM{member: member, localID: vm.ID}
	return VM{ID: f.nextID, Host: member, Spec: spec}, nil
}

// Release frees a federation-provisioned VM.
func (f *Federation) Release(now float64, id int) error {
	fv, ok := f.placed[id]
	if !ok {
		return fmt.Errorf("%w: federation id %d", ErrUnknownVM, id)
	}
	delete(f.placed, id)
	return f.members[fv.member].Release(now, fv.localID)
}

// Running returns the total number of VMs across members.
func (f *Federation) Running() int {
	n := 0
	for _, dc := range f.members {
		n += dc.Running()
	}
	return n
}

// Capacity returns the total remaining capacity across members.
func (f *Federation) Capacity(spec VMSpec) int {
	n := 0
	for _, dc := range f.members {
		n += dc.Capacity(spec)
	}
	return n
}

// EnergyKWh sums member energy consumption through time now.
func (f *Federation) EnergyKWh(now float64) float64 {
	var e float64
	for _, dc := range f.members {
		e += dc.EnergyKWh(now)
	}
	return e
}

var _ ZonedProvider = (*Federation)(nil)
