package cloud

// PowerModel is a linear host power model: an active host (one hosting at
// least one VM) draws IdleW plus (PeakW−IdleW) scaled by its core
// utilization; hosts with no VMs are powered off. This supports the
// paper's motivation of "reduced financial and environmental costs":
// fewer provisioned VM hours concentrate load on fewer active hosts.
type PowerModel struct {
	IdleW float64 // active-host idle draw (watts)
	PeakW float64 // fully-loaded draw (watts)
}

// DefaultPowerModel is a typical dual-socket 2011-era server: 175 W idle,
// 250 W at full load.
func DefaultPowerModel() PowerModel { return PowerModel{IdleW: 175, PeakW: 250} }

// powerMeter integrates data-center power over time. Incremental state:
// the number of active hosts and the sum over hosts of their core
// utilization fraction.
type powerMeter struct {
	model       PowerModel
	activeHosts int
	sumFrac     float64 // Σ usedCores/h.cores over active hosts
	lastT       float64
	joules      float64
}

// watts returns the instantaneous draw.
func (m *powerMeter) watts() float64 {
	return m.model.IdleW*float64(m.activeHosts) + (m.model.PeakW-m.model.IdleW)*m.sumFrac
}

// advance integrates up to time t.
func (m *powerMeter) advance(t float64) {
	if t > m.lastT {
		m.joules += m.watts() * (t - m.lastT)
		m.lastT = t
	}
}

// hostChanged updates the meter after a host's VM count or core usage
// changed. prevVMs/prevFrac describe the host before the change.
func (m *powerMeter) hostChanged(prevVMs int, prevFrac float64, nowVMs int, nowFrac float64) {
	if prevVMs > 0 {
		m.activeHosts--
		m.sumFrac -= prevFrac
	}
	if nowVMs > 0 {
		m.activeHosts++
		m.sumFrac += nowFrac
	}
}

// SetPowerModel enables energy metering with the given model. Call before
// the first provisioning action.
func (dc *Datacenter) SetPowerModel(pm PowerModel) {
	dc.power = &powerMeter{model: pm}
}

// EnergyKWh returns the energy consumed through time now (seconds), in
// kilowatt-hours. Zero when metering is disabled.
func (dc *Datacenter) EnergyKWh(now float64) float64 {
	if dc.power == nil {
		return 0
	}
	dc.power.advance(now)
	return dc.power.joules / 3.6e6
}

// PowerWatts returns the instantaneous draw, for inspection.
func (dc *Datacenter) PowerWatts() float64 {
	if dc.power == nil {
		return 0
	}
	return dc.power.watts()
}

// frac returns h's core-utilization fraction.
func (h *host) frac() float64 {
	return float64(h.usedCores) / float64(h.spec.Cores)
}
