package cloud

import (
	"math"
	"testing"
)

func TestEnergyDisabledByDefault(t *testing.T) {
	dc := New(2, HostSpec{Cores: 4, RAMMB: 4096})
	if _, err := dc.Provision(0, VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if dc.EnergyKWh(3600) != 0 || dc.PowerWatts() != 0 {
		t.Fatal("metering should be off without a power model")
	}
}

func TestEnergyLinearModel(t *testing.T) {
	dc := New(2, HostSpec{Cores: 4, RAMMB: 8192})
	dc.SetPowerModel(PowerModel{IdleW: 100, PeakW: 300})
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}

	// t=0: one VM on host 0 → 100 + 200·(1/4) = 150 W.
	vm1, _ := dc.Provision(0, spec)
	if got := dc.PowerWatts(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("power after first VM = %v, want 150", got)
	}
	// t=100: second VM lands on host 1 (least loaded) → two hosts at 150 W.
	_, _ = dc.Provision(100, spec)
	if got := dc.PowerWatts(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("power after second VM = %v, want 300", got)
	}
	// t=200: release the first → back to one active host.
	if err := dc.Release(200, vm1.ID); err != nil {
		t.Fatal(err)
	}
	if got := dc.PowerWatts(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("power after release = %v, want 150", got)
	}
	// Energy through t=300: 150·100 + 300·100 + 150·100 J = 60 kJ.
	wantKWh := 60000.0 / 3.6e6
	if got := dc.EnergyKWh(300); math.Abs(got-wantKWh) > 1e-12 {
		t.Fatalf("energy = %v kWh, want %v", got, wantKWh)
	}
	// Idempotent re-read.
	if got := dc.EnergyKWh(300); math.Abs(got-wantKWh) > 1e-12 {
		t.Fatalf("re-read energy = %v kWh, want %v", got, wantKWh)
	}
}

func TestEnergyFullHost(t *testing.T) {
	dc := New(1, HostSpec{Cores: 2, RAMMB: 8192})
	dc.SetPowerModel(PowerModel{IdleW: 100, PeakW: 300})
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	_, _ = dc.Provision(0, spec)
	_, _ = dc.Provision(0, spec)
	if got := dc.PowerWatts(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("full host power = %v, want peak 300", got)
	}
}

func TestFederationSpreadsAcrossClouds(t *testing.T) {
	a := New(1, HostSpec{Cores: 4, RAMMB: 8192})
	b := New(1, HostSpec{Cores: 4, RAMMB: 8192})
	f := NewFederation(a, b)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	for i := 0; i < 4; i++ {
		if _, err := f.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	// Most-spare-capacity placement alternates members: 2 VMs each.
	if a.Running() != 2 || b.Running() != 2 {
		t.Fatalf("federation balance: a=%d b=%d", a.Running(), b.Running())
	}
	if f.Running() != 4 {
		t.Fatalf("federation running = %d", f.Running())
	}
	if f.Capacity(spec) != 4 {
		t.Fatalf("federation capacity = %d, want 4", f.Capacity(spec))
	}
}

func TestFederationExhaustionAndRelease(t *testing.T) {
	a := New(1, HostSpec{Cores: 1, RAMMB: 2048})
	b := New(1, HostSpec{Cores: 1, RAMMB: 2048})
	f := NewFederation(a, b)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	v1, err := f.Provision(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Provision(0, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Provision(0, spec); err == nil {
		t.Fatal("exhausted federation accepted a VM")
	}
	if err := f.Release(0, v1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Provision(0, spec); err != nil {
		t.Fatalf("release did not free federation capacity: %v", err)
	}
	if err := f.Release(0, 999); err == nil {
		t.Fatal("unknown federation VM released")
	}
}

func TestFederationEnergy(t *testing.T) {
	a := New(1, HostSpec{Cores: 4, RAMMB: 8192})
	b := New(1, HostSpec{Cores: 4, RAMMB: 8192})
	a.SetPowerModel(PowerModel{IdleW: 100, PeakW: 300})
	b.SetPowerModel(PowerModel{IdleW: 100, PeakW: 300})
	f := NewFederation(a, b)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	_, _ = f.Provision(0, spec)
	_, _ = f.Provision(0, spec)
	// Two active hosts at 150 W for 3600 s → 0.3 kWh.
	if got := f.EnergyKWh(3600); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("federation energy = %v kWh, want 0.3", got)
	}
}

func TestFederationNeedsMembers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty federation did not panic")
		}
	}()
	NewFederation()
}
