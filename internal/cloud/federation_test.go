package cloud

import (
	"errors"
	"strings"
	"testing"
)

// twoMemberFed builds an asymmetric federation: a big member with room
// for 8 single-core VMs and a small one with room for 2, so spare-
// capacity placement decisions are observable.
func twoMemberFed() (*Federation, *Datacenter, *Datacenter) {
	big := New(2, HostSpec{Cores: 4, RAMMB: 8192})
	small := New(1, HostSpec{Cores: 2, RAMMB: 4096})
	return NewFederation(big, small), big, small
}

// TestFederationPlacement: VMs land in the member with the most spare
// capacity for the spec, releases route back to the owning member, and
// federation IDs stay stable across members.
func TestFederationPlacement(t *testing.T) {
	fed, big, small := twoMemberFed()
	spec := DefaultVMSpec()

	if got, want := fed.Capacity(spec), 10; got != want {
		t.Fatalf("total capacity %d, want %d", got, want)
	}
	// Six placements: big leads 8 vs 2, so the first six all land in big
	// (after six it is 2 vs 2 and ties break by member order — still big).
	var vms []VM
	for i := 0; i < 6; i++ {
		vm, err := fed.Provision(0, spec)
		if err != nil {
			t.Fatal(err)
		}
		if vm.Host != 0 {
			t.Fatalf("placement %d went to member %d, want the big member while it has more spare", i, vm.Host)
		}
		vms = append(vms, vm)
	}
	if big.Running() != 6 || small.Running() != 0 {
		t.Fatalf("member loads %d/%d, want 6/0", big.Running(), small.Running())
	}
	// Tie at 2 vs 2 goes to member order; after big drops to 1 spare the
	// small member must win.
	vm7, err := fed.Provision(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vm7.Host != 0 {
		t.Fatalf("tie-break placement went to member %d, want 0", vm7.Host)
	}
	vm8, err := fed.Provision(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if vm8.Host != 1 {
		t.Fatalf("placement went to member %d, want the small member once it has more spare", vm8.Host)
	}
	if fed.Running() != 8 {
		t.Fatalf("federation running %d, want 8", fed.Running())
	}

	// Releases must route to the owning member through the fed-scoped ID.
	if err := fed.Release(1, vm8.ID); err != nil {
		t.Fatal(err)
	}
	if small.Running() != 0 {
		t.Fatalf("small member still runs %d after release", small.Running())
	}
	if err := fed.Release(1, vms[0].ID); err != nil {
		t.Fatal(err)
	}
	if big.Running() != 6 {
		t.Fatalf("big member runs %d after release, want 6", big.Running())
	}
	if err := fed.Release(1, vms[0].ID); err == nil {
		t.Fatal("double release of a federation ID succeeded")
	}
}

// TestFederationExhaustion: a full federation reports ErrNoCapacity and
// recovers as soon as any member frees a slot.
func TestFederationExhaustion(t *testing.T) {
	fed, _, _ := twoMemberFed()
	spec := DefaultVMSpec()
	var last VM
	for i := 0; i < 10; i++ {
		vm, err := fed.Provision(0, spec)
		if err != nil {
			t.Fatalf("placement %d failed with spare capacity: %v", i, err)
		}
		last = vm
	}
	if _, err := fed.Provision(0, spec); err == nil {
		t.Fatal("provision beyond federation capacity succeeded")
	}
	if err := fed.Release(0, last.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Provision(0, spec); err != nil {
		t.Fatalf("provision after release failed: %v", err)
	}
}

// TestFederationTypedErrors: every federation error path reports a typed
// sentinel matchable through errors.Is, with the wrap carrying routing
// context (the member index or the member count).
func TestFederationTypedErrors(t *testing.T) {
	fed, _, _ := twoMemberFed()
	spec := DefaultVMSpec()

	// Exhaustion across the whole federation wraps ErrNoCapacity.
	for i := 0; i < 10; i++ {
		if _, err := fed.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	_, err := fed.Provision(0, spec)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("federation exhaustion = %v, want errors.Is ErrNoCapacity", err)
	}
	if !strings.Contains(err.Error(), "2 member(s)") {
		t.Fatalf("exhaustion error %q does not name the member count", err)
	}

	// A single exhausted member wraps ErrNoCapacity with its zone index,
	// so zone-aware callers can fail over without breaker bookkeeping.
	_, err = fed.ProvisionIn(0, 1, spec)
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("member exhaustion = %v, want errors.Is ErrNoCapacity", err)
	}
	if !strings.Contains(err.Error(), "member 1") {
		t.Fatalf("member exhaustion error %q does not name the member", err)
	}

	// A zone index out of range is a wiring bug, not a capacity signal.
	for _, zone := range []int{-1, 2} {
		_, err := fed.ProvisionIn(0, zone, spec)
		if err == nil {
			t.Fatalf("ProvisionIn(zone=%d) succeeded on a 2-member federation", zone)
		}
		if errors.Is(err, ErrNoCapacity) || errors.Is(err, ErrTransient) {
			t.Fatalf("ProvisionIn(zone=%d) = %v, want a plain wiring error", zone, err)
		}
	}

	// Releasing an ID the federation never issued wraps ErrUnknownVM.
	err = fed.Release(0, 999)
	if !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown release = %v, want errors.Is ErrUnknownVM", err)
	}

	// ErrZoneDown is transient by construction: retry loops that match
	// ErrTransient treat a dark zone as recoverable.
	if !errors.Is(ErrZoneDown, ErrTransient) {
		t.Fatal("ErrZoneDown does not wrap ErrTransient")
	}
}

// TestFederationReset: Reset rewinds routing state and every member, and
// the federation then reproduces its first life exactly.
func TestFederationReset(t *testing.T) {
	fed, big, small := twoMemberFed()
	spec := DefaultVMSpec()
	first, err := fed.Provision(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := fed.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	fed.Reset()
	if fed.Running() != 0 || big.Running() != 0 || small.Running() != 0 {
		t.Fatalf("running after reset: fed=%d big=%d small=%d", fed.Running(), big.Running(), small.Running())
	}
	if got, want := fed.Capacity(spec), 10; got != want {
		t.Fatalf("capacity after reset %d, want %d", got, want)
	}
	again, err := fed.Provision(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("first post-reset placement %+v differs from first life %+v", again, first)
	}
}

// TestFederationSnapshotRestore: Snapshot mid-stream, mutate (provision
// and release on both members), Restore — routing state, member loads,
// and the ID sequence must all rewind, and the restored federation must
// continue exactly as the unmutated one would.
func TestFederationSnapshotRestore(t *testing.T) {
	fed, big, small := twoMemberFed()
	spec := DefaultVMSpec()
	var vms []VM
	for i := 0; i < 4; i++ {
		vm, err := fed.Provision(0, spec)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	var snap FedSnap
	fed.Snapshot(&snap)
	wantBig, wantSmall := big.Running(), small.Running()

	// Divergent future: churn on both members.
	for i := 0; i < 5; i++ {
		if _, err := fed.Provision(1, spec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.Release(2, vms[1].ID); err != nil {
		t.Fatal(err)
	}
	fed.Restore(&snap)

	if big.Running() != wantBig || small.Running() != wantSmall {
		t.Fatalf("member loads after restore %d/%d, want %d/%d", big.Running(), small.Running(), wantBig, wantSmall)
	}
	if fed.Running() != 4 {
		t.Fatalf("federation running %d after restore, want 4", fed.Running())
	}
	// The divergent future's VMs must be unknown; the snapshot's known.
	if err := fed.Release(3, vms[3].ID); err != nil {
		t.Fatalf("release of pre-snapshot VM failed after restore: %v", err)
	}
	if err := fed.Release(3, vms[3].ID+3); err == nil {
		t.Fatal("release of a divergent-future VM succeeded after restore")
	}
	// The ID sequence continues from the snapshot point: the next
	// placement reuses the ID the divergent future had handed out first.
	vm, err := fed.Provision(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := vms[3].ID + 1; vm.ID != want {
		t.Fatalf("post-restore ID %d, want %d", vm.ID, want)
	}
	// Snapshot buffers are reusable: capture again into the same snap.
	fed.Snapshot(&snap)
	fed.Reset()
	fed.Restore(&snap)
	if fed.Running() != 4 {
		t.Fatalf("running %d after snapshot-reset-restore round trip, want 4", fed.Running())
	}
}
