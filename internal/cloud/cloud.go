// Package cloud models the IaaS layer of the paper's setup: one data
// center of physical hosts onto which virtual machines are placed by a
// resource provisioner. The paper's simulated data center has 1000 hosts,
// each with two quad-core processors and 16 GB of RAM; application VMs
// take one core and 2 GB, are pinned to an idle core (no time-sharing),
// and are placed on the host with the fewest running VMs ("a simple
// load-balance policy for resource provisioning").
//
// Resource provisioning — the VM-to-host mapping — is exactly the part of
// the stack the paper treats as opaque to the application provisioner, so
// this package exposes only allocate/release and aggregate capacity.
package cloud

import (
	"errors"
	"fmt"
)

// Paper defaults (Section V-A).
const (
	DefaultHosts     = 1000
	DefaultHostCores = 8     // two quad-core processors
	DefaultHostRAM   = 16384 // MB
	DefaultVMCores   = 1
	DefaultVMRAM     = 2048 // MB
)

// ErrNoCapacity reports that no host can fit the requested VM.
var ErrNoCapacity = errors.New("cloud: no host has capacity for the requested VM")

// ErrUnknownVM reports a release of a VM the data center does not know.
var ErrUnknownVM = errors.New("cloud: unknown VM")

// ErrTransient marks a temporary IaaS API failure: the request was valid
// and may succeed if retried. The fault-injection layer wraps this
// sentinel, and the provisioning layer keys its retry/backoff loop on it
// (a transient error is not a capacity shortfall).
var ErrTransient = errors.New("cloud: transient API error")

// ErrZoneDown reports that the targeted failure domain (a federation
// member) is unavailable for the duration of an outage window. It wraps
// ErrTransient — the zone comes back, so retry/backoff and circuit
// breakers both treat it as retryable — while staying errors.Is-matchable
// on its own for zone-aware callers.
var ErrZoneDown = fmt.Errorf("cloud: zone unavailable: %w", ErrTransient)

// HostSpec describes one physical machine.
type HostSpec struct {
	Cores int `json:"cores"`
	RAMMB int `json:"ram_mb"`
}

// VMSpec describes the resources one VM instance consumes and its relative
// service capacity (1.0 = the paper's baseline instance; other values
// support the heterogeneous-capacity extension).
type VMSpec struct {
	Cores    int     `json:"cores"`
	RAMMB    int     `json:"ram_mb"`
	Capacity float64 `json:"capacity"`
}

// DefaultVMSpec returns the paper's application VM: one core, 2 GB,
// baseline capacity.
func DefaultVMSpec() VMSpec {
	return VMSpec{Cores: DefaultVMCores, RAMMB: DefaultVMRAM, Capacity: 1}
}

// VM identifies one provisioned virtual machine.
type VM struct {
	ID   int
	Host int
	Spec VMSpec
}

type host struct {
	spec      HostSpec
	usedCores int
	usedRAM   int
	vms       int
}

func (h *host) fits(spec VMSpec) bool {
	return h.usedCores+spec.Cores <= h.spec.Cores && h.usedRAM+spec.RAMMB <= h.spec.RAMMB
}

// Provider abstracts whatever supplies VMs to the application
// provisioner — a single data center or a federation of clouds
// (the paper's P = (c₁, …, cₙ)). now is the current virtual time,
// needed for energy accounting.
type Provider interface {
	Provision(now float64, spec VMSpec) (VM, error)
	Release(now float64, id int) error
}

// ZonedProvider is a Provider whose capacity spans multiple failure
// domains ("zones" — federation members). Zone-aware callers (the
// circuit-breaking provisioner, the fault layer's outage process) address
// capacity per zone through ProvisionIn; plain Provider users keep the
// aggregate view.
type ZonedProvider interface {
	Provider
	// Zones returns the number of failure domains (≥ 1).
	Zones() int
	// ProvisionIn places a VM inside the given zone only. The returned
	// VM's Host is the zone index.
	ProvisionIn(now float64, zone int, spec VMSpec) (VM, error)
}

// Placement selects the resource provisioner's VM-to-host mapping
// policy. The paper's setup uses LeastLoaded ("new VMs are created, if
// possible, in the host with fewer running virtualized application
// instances"); the alternatives support the placement ablation.
type Placement int

// Placement policies.
const (
	// LeastLoaded picks the host with the fewest running VMs (paper
	// default), spreading load.
	LeastLoaded Placement = iota
	// FirstFit picks the lowest-index host with room, consolidating VMs
	// onto few hosts (the energy-friendly policy).
	FirstFit
	// RoundRobin cycles through hosts regardless of load.
	RoundRobin
)

// Datacenter is one IaaS cloud c_i: a fixed pool of hosts with a
// configurable VM placement policy (least-loaded by default, as in the
// paper).
type Datacenter struct {
	hosts     []host
	nextID    int
	placed    map[int]VM
	power     *powerMeter // nil = energy metering disabled
	placement Placement   //vmprov:ephemeral -- run-scope policy config set before the first placement; Reset/Restore deliberately preserve it
	rrCursor  int
}

// New creates a data center of n identical hosts.
func New(n int, spec HostSpec) *Datacenter {
	if n <= 0 || spec.Cores <= 0 || spec.RAMMB <= 0 {
		panic(fmt.Sprintf("cloud: invalid datacenter shape n=%d spec=%+v", n, spec))
	}
	dc := &Datacenter{hosts: make([]host, n), placed: make(map[int]VM)}
	for i := range dc.hosts {
		dc.hosts[i].spec = spec
	}
	return dc
}

// NewDefault creates the paper's data center: 1000 hosts × (8 cores,
// 16 GB).
func NewDefault() *Datacenter {
	return New(DefaultHosts, HostSpec{Cores: DefaultHostCores, RAMMB: DefaultHostRAM})
}

// Reset releases every VM and rewinds the ID counter and placement
// cursor, returning the data center to its just-constructed state while
// keeping the host array and placement map. The power meter (if enabled)
// restarts at zero with the same model. Pooled replication contexts use
// this to reuse one data center across runs without allocating.
func (dc *Datacenter) Reset() {
	for i := range dc.hosts {
		h := &dc.hosts[i]
		h.usedCores, h.usedRAM, h.vms = 0, 0, 0
	}
	dc.nextID = 0
	dc.rrCursor = 0
	clear(dc.placed)
	if dc.power != nil {
		*dc.power = powerMeter{model: dc.power.model}
	}
}

// DCSnap holds one captured Datacenter state (see Datacenter.Snapshot).
// The zero value is ready to use; its buffers are reused across captures.
type DCSnap struct {
	hosts    []host
	nextID   int
	rrCursor int
	placed   map[int]VM
	power    powerMeter
	hasPower bool
}

// Snapshot captures the data center's complete state — per-host usage,
// the placed-VM map, the ID counter, the placement cursor, and the power
// meter's integration state — into snap, reusing snap's buffers. Cost is
// O(hosts + live VMs).
func (dc *Datacenter) Snapshot(snap *DCSnap) {
	snap.hosts = append(snap.hosts[:0], dc.hosts...)
	snap.nextID = dc.nextID
	snap.rrCursor = dc.rrCursor
	if snap.placed == nil {
		snap.placed = make(map[int]VM, len(dc.placed))
	} else {
		clear(snap.placed)
	}
	for id, vm := range dc.placed {
		snap.placed[id] = vm
	}
	snap.hasPower = dc.power != nil
	if dc.power != nil {
		snap.power = *dc.power
	}
}

// Restore rewinds the data center to a state captured from it by
// Snapshot: VMs provisioned since the snapshot vanish, released ones are
// placed again, and energy accounting resumes from the captured integral.
func (dc *Datacenter) Restore(snap *DCSnap) {
	copy(dc.hosts, snap.hosts)
	dc.nextID = snap.nextID
	dc.rrCursor = snap.rrCursor
	clear(dc.placed)
	for id, vm := range snap.placed {
		dc.placed[id] = vm
	}
	if snap.hasPower && dc.power != nil {
		*dc.power = snap.power
	}
}

// Provision places a VM on the host with the fewest running VMs that can
// fit it (ties broken by lowest host index) and returns its handle. now
// is the current virtual time, used for energy accounting.
func (dc *Datacenter) Provision(now float64, spec VMSpec) (VM, error) {
	if spec.Cores <= 0 || spec.RAMMB <= 0 || spec.Capacity <= 0 {
		return VM{}, fmt.Errorf("cloud: invalid VM spec %+v", spec)
	}
	best := dc.pick(spec)
	if best == -1 {
		return VM{}, ErrNoCapacity
	}
	h := &dc.hosts[best]
	if dc.power != nil {
		dc.power.advance(now)
		prevVMs, prevFrac := h.vms, h.frac()
		defer func() { dc.power.hostChanged(prevVMs, prevFrac, h.vms, h.frac()) }()
	}
	h.usedCores += spec.Cores
	h.usedRAM += spec.RAMMB
	h.vms++
	dc.nextID++
	vm := VM{ID: dc.nextID, Host: best, Spec: spec}
	dc.placed[vm.ID] = vm
	return vm, nil
}

// Release frees the resources of a provisioned VM.
func (dc *Datacenter) Release(now float64, id int) error {
	vm, ok := dc.placed[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(dc.placed, id)
	h := &dc.hosts[vm.Host]
	if dc.power != nil {
		dc.power.advance(now)
		prevVMs, prevFrac := h.vms, h.frac()
		defer func() { dc.power.hostChanged(prevVMs, prevFrac, h.vms, h.frac()) }()
	}
	h.usedCores -= vm.Spec.Cores
	h.usedRAM -= vm.Spec.RAMMB
	h.vms--
	return nil
}

// SetPlacement switches the VM placement policy. Call before the first
// provisioning action.
func (dc *Datacenter) SetPlacement(p Placement) { dc.placement = p }

// pick returns the target host index under the active policy, or −1.
func (dc *Datacenter) pick(spec VMSpec) int {
	switch dc.placement {
	case FirstFit:
		for i := range dc.hosts {
			if dc.hosts[i].fits(spec) {
				return i
			}
		}
		return -1
	case RoundRobin:
		n := len(dc.hosts)
		for off := 0; off < n; off++ {
			i := (dc.rrCursor + off) % n
			if dc.hosts[i].fits(spec) {
				dc.rrCursor = (i + 1) % n
				return i
			}
		}
		return -1
	default: // LeastLoaded
		best := -1
		for i := range dc.hosts {
			h := &dc.hosts[i]
			if !h.fits(spec) {
				continue
			}
			if best == -1 || h.vms < dc.hosts[best].vms {
				best = i
			}
		}
		return best
	}
}

var _ Provider = (*Datacenter)(nil)

// Running returns the number of currently provisioned VMs.
func (dc *Datacenter) Running() int { return len(dc.placed) }

// Hosts returns the number of physical hosts.
func (dc *Datacenter) Hosts() int { return len(dc.hosts) }

// Capacity returns how many additional VMs of the given spec could be
// provisioned right now.
func (dc *Datacenter) Capacity(spec VMSpec) int {
	total := 0
	for i := range dc.hosts {
		h := dc.hosts[i]
		byCores := (h.spec.Cores - h.usedCores) / spec.Cores
		byRAM := (h.spec.RAMMB - h.usedRAM) / spec.RAMMB
		if byRAM < byCores {
			byCores = byRAM
		}
		if byCores > 0 {
			total += byCores
		}
	}
	return total
}

// HostLoad returns the number of VMs on each host, for placement tests.
func (dc *Datacenter) HostLoad() []int {
	load := make([]int, len(dc.hosts))
	for i := range dc.hosts {
		load[i] = dc.hosts[i].vms
	}
	return load
}
