package cloud

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParsePlacement(t *testing.T) {
	cases := map[string]Placement{
		"":             LeastLoaded,
		"least-loaded": LeastLoaded,
		"first-fit":    FirstFit,
		"round-robin":  RoundRobin,
	}
	for name, want := range cases {
		got, err := ParsePlacement(name)
		if err != nil || got != want {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePlacement("best-fit"); err == nil || !strings.Contains(err.Error(), "least-loaded") {
		t.Errorf("unknown placement error should list valid names, got %v", err)
	}
}

func TestPlacementJSONRoundTrip(t *testing.T) {
	for _, p := range []Placement{LeastLoaded, FirstFit, RoundRobin} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + p.String() + `"`; string(data) != want {
			t.Errorf("marshal %v = %s, want %s", p, data, want)
		}
		var back Placement
		if err := json.Unmarshal(data, &back); err != nil || back != p {
			t.Errorf("unmarshal %s = %v, %v", data, back, err)
		}
	}
	var p Placement
	if err := json.Unmarshal([]byte(`"nope"`), &p); err == nil {
		t.Error("unknown placement name unmarshaled without error")
	}
}
