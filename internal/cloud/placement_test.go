package cloud

import "testing"

func TestFirstFitConsolidates(t *testing.T) {
	dc := New(3, HostSpec{Cores: 4, RAMMB: 8192})
	dc.SetPlacement(FirstFit)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	for i := 0; i < 6; i++ {
		if _, err := dc.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	load := dc.HostLoad()
	if load[0] != 4 || load[1] != 2 || load[2] != 0 {
		t.Fatalf("first-fit load = %v, want [4 2 0]", load)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	dc := New(3, HostSpec{Cores: 4, RAMMB: 8192})
	dc.SetPlacement(RoundRobin)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	var hosts []int
	for i := 0; i < 6; i++ {
		vm, err := dc.Provision(0, spec)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, vm.Host)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("round-robin placement %v, want %v", hosts, want)
		}
	}
}

func TestRoundRobinSkipsFullHosts(t *testing.T) {
	dc := New(2, HostSpec{Cores: 1, RAMMB: 8192})
	dc.SetPlacement(RoundRobin)
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	a, _ := dc.Provision(0, spec) // host 0, now full
	if a.Host != 0 {
		t.Fatalf("first placement on host %d", a.Host)
	}
	b, _ := dc.Provision(0, spec) // host 1
	if b.Host != 1 {
		t.Fatalf("second placement on host %d", b.Host)
	}
	if _, err := dc.Provision(0, spec); err == nil {
		t.Fatal("full DC accepted a VM")
	}
	// Free host 0 and verify the cursor wraps to it.
	_ = dc.Release(0, a.ID)
	c, err := dc.Provision(0, spec)
	if err != nil || c.Host != 0 {
		t.Fatalf("wrap-around placement: host %d err %v", c.Host, err)
	}
}

// TestFirstFitEnergyAdvantage: consolidation powers fewer hosts, so for
// the same fleet FirstFit draws less than LeastLoaded spread.
func TestFirstFitEnergyAdvantage(t *testing.T) {
	run := func(p Placement) float64 {
		dc := New(4, HostSpec{Cores: 4, RAMMB: 8192})
		dc.SetPlacement(p)
		dc.SetPowerModel(PowerModel{IdleW: 100, PeakW: 200})
		spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
		for i := 0; i < 4; i++ {
			if _, err := dc.Provision(0, spec); err != nil {
				t.Fatal(err)
			}
		}
		return dc.PowerWatts()
	}
	ff, ll := run(FirstFit), run(LeastLoaded)
	// FirstFit: one active host fully loaded = 200 W.
	// LeastLoaded: four active hosts at 1/4 load = 4·125 = 500 W.
	if ff >= ll {
		t.Fatalf("first-fit %v W should undercut least-loaded %v W", ff, ll)
	}
	if ff != 200 || ll != 500 {
		t.Fatalf("power values: ff=%v ll=%v, want 200/500", ff, ll)
	}
}
