package cloud

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestProvisionLeastLoaded(t *testing.T) {
	dc := New(3, HostSpec{Cores: 4, RAMMB: 8192})
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	// Six VMs over three 4-core hosts must balance 2-2-2.
	for i := 0; i < 6; i++ {
		if _, err := dc.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	for i, load := range dc.HostLoad() {
		if load != 2 {
			t.Fatalf("host %d load = %d, want 2 (load: %v)", i, load, dc.HostLoad())
		}
	}
}

func TestProvisionTieBreakLowestHost(t *testing.T) {
	dc := New(2, HostSpec{Cores: 2, RAMMB: 4096})
	vm, err := dc.Provision(0, VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Host != 0 {
		t.Fatalf("first VM placed on host %d, want 0", vm.Host)
	}
}

func TestProvisionRespectsRAM(t *testing.T) {
	dc := New(1, HostSpec{Cores: 8, RAMMB: 4096})
	spec := VMSpec{Cores: 1, RAMMB: 2048, Capacity: 1}
	if _, err := dc.Provision(0, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Provision(0, spec); err != nil {
		t.Fatal(err)
	}
	// Cores remain but RAM is gone.
	if _, err := dc.Provision(0, spec); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected ErrNoCapacity, got %v", err)
	}
}

func TestProvisionExhaustionAndRelease(t *testing.T) {
	dc := New(2, HostSpec{Cores: 2, RAMMB: 8192})
	spec := VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1}
	var vms []VM
	for i := 0; i < 4; i++ {
		vm, err := dc.Provision(0, spec)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	if _, err := dc.Provision(0, spec); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("expected ErrNoCapacity at full DC, got %v", err)
	}
	if dc.Running() != 4 {
		t.Fatalf("running = %d", dc.Running())
	}
	if err := dc.Release(0, vms[0].ID); err != nil {
		t.Fatal(err)
	}
	if dc.Running() != 3 {
		t.Fatalf("running after release = %d", dc.Running())
	}
	if _, err := dc.Provision(0, spec); err != nil {
		t.Fatalf("release did not free capacity: %v", err)
	}
}

func TestReleaseUnknown(t *testing.T) {
	dc := New(1, HostSpec{Cores: 2, RAMMB: 2048})
	if err := dc.Release(0, 99); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("expected ErrUnknownVM, got %v", err)
	}
	vm, _ := dc.Provision(0, VMSpec{Cores: 1, RAMMB: 1024, Capacity: 1})
	if err := dc.Release(0, vm.ID); err != nil {
		t.Fatal(err)
	}
	if err := dc.Release(0, vm.ID); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double release should fail, got %v", err)
	}
}

func TestCapacityCount(t *testing.T) {
	dc := NewDefault()
	spec := DefaultVMSpec()
	// 1000 hosts × 8 cores, RAM allows 8 VMs of 2 GB per 16 GB host.
	if got := dc.Capacity(spec); got != 8000 {
		t.Fatalf("default capacity = %d, want 8000", got)
	}
	if dc.Hosts() != 1000 {
		t.Fatalf("hosts = %d", dc.Hosts())
	}
	for i := 0; i < 100; i++ {
		if _, err := dc.Provision(0, spec); err != nil {
			t.Fatal(err)
		}
	}
	if got := dc.Capacity(spec); got != 7900 {
		t.Fatalf("capacity after 100 = %d, want 7900", got)
	}
}

func TestInvalidSpecs(t *testing.T) {
	dc := New(1, HostSpec{Cores: 2, RAMMB: 2048})
	if _, err := dc.Provision(0, VMSpec{Cores: 0, RAMMB: 1024, Capacity: 1}); err == nil {
		t.Fatal("zero-core VM accepted")
	}
	if _, err := dc.Provision(0, VMSpec{Cores: 1, RAMMB: 1024, Capacity: 0}); err == nil {
		t.Fatal("zero-capacity VM accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid datacenter shape did not panic")
		}
	}()
	New(0, HostSpec{Cores: 1, RAMMB: 1})
}

// Property: after any sequence of provisions, host loads differ by at most
// one (least-loaded placement keeps the fleet balanced).
func TestPlacementBalanceProperty(t *testing.T) {
	f := func(nRaw, hRaw uint8) bool {
		hosts := int(hRaw)%10 + 1
		dc := New(hosts, HostSpec{Cores: 16, RAMMB: 1 << 20})
		n := int(nRaw) % (hosts * 16)
		for i := 0; i < n; i++ {
			if _, err := dc.Provision(0, VMSpec{Cores: 1, RAMMB: 1, Capacity: 1}); err != nil {
				return false
			}
		}
		load := dc.HostLoad()
		min, max := load[0], load[0]
		for _, l := range load {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: provision/release round-trips conserve accounting.
func TestAccountingConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		dc := New(4, HostSpec{Cores: 4, RAMMB: 4096})
		spec := VMSpec{Cores: 1, RAMMB: 512, Capacity: 1}
		var live []int
		for _, provision := range ops {
			if provision {
				vm, err := dc.Provision(0, spec)
				if err == nil {
					live = append(live, vm.ID)
				}
			} else if len(live) > 0 {
				if err := dc.Release(0, live[0]); err != nil {
					return false
				}
				live = live[1:]
			}
		}
		return dc.Running() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
