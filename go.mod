module vmprov

go 1.22
