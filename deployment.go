package vmprov

import (
	"vmprov/internal/cloud"
	"vmprov/internal/metrics"
	"vmprov/internal/provision"
	"vmprov/internal/sim"
	"vmprov/internal/stats"
	"vmprov/internal/workload"
)

// Deployment wires the full stack — simulator, cloud provider, metrics,
// provisioner — for a custom experiment outside the two paper scenarios.
// Supply your own Source, Analyzer (or a static fleet), and QoS contract.
type Deployment struct {
	Sim         *sim.Sim
	Cloud       Provider
	Provisioner *provision.Provisioner

	cfg Config
	col *metrics.Collector
}

// NewDeployment builds a deployment on the given provider — a Datacenter
// or a Federation; nil uses the paper's default data center (1000 hosts ×
// 8 cores).
func NewDeployment(cfg Config, p Provider) *Deployment {
	s := sim.New()
	if p == nil || p == (*cloud.Datacenter)(nil) {
		p = cloud.NewDefault()
	}
	col := metrics.NewCollector(cfg.QoS.Ts)
	return &Deployment{
		Sim:         s,
		Cloud:       p,
		Provisioner: provision.NewProvisioner(s, p, cfg, col),
		cfg:         cfg,
		col:         col,
	}
}

// UseAdaptive attaches the paper's adaptive controller driven by the
// given analyzer.
func (d *Deployment) UseAdaptive(an Analyzer) {
	(&provision.Adaptive{Analyzer: an}).Attach(d.Sim, d.Provisioner)
}

// UseStatic provisions a fixed fleet of m instances at time zero.
func (d *Deployment) UseStatic(m int) {
	(&provision.Static{M: m}).Attach(d.Sim, d.Provisioner)
}

// Start begins generating the workload, feeding arrivals through
// admission control (and, for observing analyzers, into the analyzer).
func (d *Deployment) Start(src Source, seed uint64, an Analyzer) {
	emit := d.Provisioner.Submit
	if obs, ok := an.(workload.ObservingAnalyzer); ok {
		emit = func(q Request) {
			obs.Observe(q.Arrival)
			d.Provisioner.Submit(q)
		}
	}
	src.Start(d.Sim, stats.NewRNG(seed), emit)
}

// Finish runs the simulation to the horizon and returns the metrics
// labeled with the given policy name.
func (d *Deployment) Finish(policy string, horizon float64) Result {
	d.Sim.RunUntil(horizon)
	d.Provisioner.Shutdown(horizon)
	return d.col.Result(policy, horizon)
}
