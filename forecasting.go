package vmprov

import (
	"vmprov/internal/forecast"
	"vmprov/internal/workload"
)

// Forecasting toolkit (the paper's ARMAX/QRSM future-work direction),
// re-exported for custom analyzers and offline workload studies.
type (
	// Forecaster predicts the next value of a series.
	Forecaster = forecast.Forecaster
	// ForecastScore summarizes a forecaster's backtest accuracy.
	ForecastScore = forecast.Score
	// Holt is double exponential smoothing (level + trend).
	Holt = forecast.Holt
	// SeasonalNaive repeats the value one period back.
	SeasonalNaive = forecast.SeasonalNaive
	// MovingAverage predicts the recent-window mean.
	MovingAverage = forecast.MovingAverage
	// ARForecaster is ordinary-least-squares autoregression.
	ARForecaster = forecast.AR
	// NaiveForecaster repeats the last observation.
	NaiveForecaster = forecast.Naive
	// ForecastAnalyzer adapts any Forecaster into a workload analyzer.
	ForecastAnalyzer = workload.ForecastAnalyzer
)

// Backtest scores a forecaster's one-step-ahead accuracy on a series.
func Backtest(f Forecaster, series []float64, warmup int) (ForecastScore, error) {
	return forecast.Backtest(f, series, warmup)
}

// CompareForecasters backtests several forecasters on one series,
// returning scores sorted by ascending MAE.
func CompareForecasters(series []float64, warmup int, fs ...Forecaster) ([]ForecastScore, error) {
	return forecast.Compare(series, warmup, fs...)
}

// ForecastTable renders backtest scores for reports.
func ForecastTable(scores []ForecastScore) string { return forecast.Table(scores) }
