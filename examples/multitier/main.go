// multitier exercises the composite-services extension (the paper's
// future work): requests traverse a three-stage pipeline — web front-end,
// application logic, cloud storage — where the first two tiers autoscale
// with the paper's mechanism and the storage tier is a fixed-concurrency
// service. The end-to-end response budget is split across tiers.
package main

import (
	"fmt"

	"vmprov"
)

func main() {
	s := vmprov.NewSim()
	r := vmprov.NewRNG(7)

	stageCfg := func(ts, tr float64) vmprov.Config {
		return vmprov.Config{
			QoS:       vmprov.QoS{Ts: ts, MaxRejection: 0, RejectionTol: 1e-3, MinUtilization: 0.8},
			NominalTr: tr,
			MaxVMs:    300,
		}
	}
	p := vmprov.NewPipeline(s, nil, 1.5, []vmprov.Stage{
		{
			Name: "web",
			Cfg:  stageCfg(0.25, 0.1),
			Controller: &vmprov.AdaptiveController{
				Analyzer: &vmprov.WindowAnalyzer{Interval: 120, Windows: 3, Safety: 1.4},
			},
		},
		{
			Name: "app",
			Cfg:  stageCfg(0.75, 0.3),
			Controller: &vmprov.AdaptiveController{
				Analyzer: &vmprov.WindowAnalyzer{Interval: 120, Windows: 3, Safety: 1.4},
			},
		},
		{
			// Storage: a fixed-concurrency back-end service. Its fleet
			// size is the storage system's parallelism, not autoscaled.
			Name:       "storage",
			Cfg:        stageCfg(0.5, 0.05),
			Controller: &vmprov.StaticController{M: 4},
		},
	})

	// Diurnal-ish load: 20 req/s for an hour, 60 req/s surge, back down.
	const horizon = 3 * 3600
	rates := []struct{ from, rate float64 }{{0, 20}, {3600, 60}, {7200, 25}}
	var pump func()
	pump = func() {
		now := s.Now()
		if now >= horizon {
			return
		}
		rate := rates[0].rate
		for _, seg := range rates {
			if now >= seg.from {
				rate = seg.rate
			}
		}
		// Per-tier demands: 100 ms web, 300 ms app, 50 ms storage, each
		// with the paper's 0–10% jitter.
		p.Submit([]float64{
			0.1 * (1 + 0.1*r.Float64()),
			0.3 * (1 + 0.1*r.Float64()),
			0.05 * (1 + 0.1*r.Float64()),
		}, 0, 0)
		s.Schedule(r.ExpFloat64()/rate, pump)
	}
	s.Schedule(0.01, pump)

	res := p.Finish(horizon + 1800)
	fmt.Print(res)
	fmt.Printf("\nweb fleet peaked at %d instances, app fleet at %d; storage stayed at %d\n",
		findMax(res, 0), findMax(res, 1), res.Stages[2].MaxInstances)
}

func findMax(r vmprov.PipelineResult, stage int) int {
	return r.Stages[stage].MaxInstances
}
