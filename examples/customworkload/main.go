// customworkload shows how to provision a workload the paper never saw:
// a flash-crowd step load, handled by the model-free empirical analyzers
// (sliding-window and AR forecasting — the paper's future-work direction)
// and compared against an oracle that knows the true rates.
package main

import (
	"fmt"

	"vmprov"
)

const horizon = 4 * 3600.0

// newSource builds the flash-crowd load: 5 req/s, a 10× surge in hour
// two, then decay. Service takes ≈1 s (paper-style 0–10% jitter is
// emulated with a small uniform range via the step source's sampler).
func newSource() *vmprov.StepSource {
	return &vmprov.StepSource{
		Times:   []float64{0, 3600, 7200, 10800},
		Rates:   []float64{5, 50, 20, 5},
		Service: uniformService{},
		Horizon: horizon,
	}
}

// uniformService draws U(1.0, 1.1) — base time plus the paper's jitter.
type uniformService struct{}

func (uniformService) Sample(r *vmprov.RNG) float64 { return 1 + 0.1*r.Float64() }
func (uniformService) Mean() float64                { return 1.05 }

func run(name string, makeAnalyzer func(src vmprov.Source) vmprov.Analyzer) vmprov.Result {
	cfg := vmprov.Config{
		QoS:       vmprov.QoS{Ts: 2.5, MaxRejection: 0, RejectionTol: 1e-3, MinUtilization: 0.8},
		NominalTr: 1,
		MaxVMs:    200,
	}
	d := vmprov.NewDeployment(cfg, nil)
	src := newSource()
	an := makeAnalyzer(src)
	d.UseAdaptive(an)
	d.Start(src, 2024, an)
	return d.Finish(name, horizon)
}

func main() {
	oracle := run("Oracle", func(src vmprov.Source) vmprov.Analyzer {
		return &vmprov.OracleAnalyzer{Source: src, Times: []float64{3600, 7200, 10800}}
	})
	window := run("Window", func(vmprov.Source) vmprov.Analyzer {
		return &vmprov.WindowAnalyzer{Interval: 120, Windows: 5, Safety: 1.3}
	})
	ar := run("AR(3)", func(vmprov.Source) vmprov.Analyzer {
		return &vmprov.ARAnalyzer{Interval: 120, Order: 3, Fit: 30, Safety: 1.3}
	})

	fmt.Print(vmprov.FigureTable(
		"flash-crowd step load: oracle vs model-free analyzers",
		[]vmprov.Result{oracle, window, ar}))
	fmt.Println("\nThe empirical analyzers pay a small rejection penalty during the")
	fmt.Println("surge (they react one window late) and spend somewhat more VM hours")
	fmt.Println("than the oracle; better prediction closes exactly this gap — the")
	fmt.Println("trade the paper's future-work section anticipates.")
}
