// scientificbatch reproduces the paper's Figure 6 at full scale: the
// Bag-of-Tasks scientific workload over one simulated day, adaptive
// provisioning against every static baseline, averaged over replications.
package main

import (
	"flag"
	"fmt"

	"vmprov"
)

func main() {
	reps := flag.Int("reps", 5, "replications per policy (paper: 10)")
	flag.Parse()

	sc := vmprov.Sci(1)

	// The analyzer's deliberate over-estimation (Section V-B2): modes of
	// the Weibull components with 1.2× / 2.6× safety factors.
	an := vmprov.SciAnalyzer{Model: vmprov.NewSciWorkload(1), PeakFactor: 1.2, OffPeakFactor: 2.6}
	fmt.Printf("analyzer estimates: peak %.4f req/s, off-peak %.4f req/s\n",
		an.PeakEstimate(), an.OffPeakEstimate())
	fmt.Printf("true mean rates:    peak %.4f req/s, off-peak %.4f req/s\n\n",
		an.Model.MeanRate(10*3600), an.Model.MeanRate(0))

	results := vmprov.RunAll(sc, *reps, 1, 0, vmprov.RunOptions{})
	fmt.Print(vmprov.FigureTable(
		fmt.Sprintf("scientific scenario, scale 1, %d replications — paper Figure 6", *reps),
		results))

	adaptive, static75 := results[0], results[len(results)-1]
	fmt.Printf("\npaper: adaptive 13–80 instances, ≈0 rejection, 78%% utilization, −46%% VM hours vs Static-75\n")
	fmt.Printf("here:  adaptive %d–%d instances, %.2f%% rejection, %.0f%% utilization, %+.0f%% VM hours vs Static-75\n",
		adaptive.MinInstances, adaptive.MaxInstances,
		100*adaptive.RejectionRate, 100*adaptive.Utilization,
		100*(adaptive.VMHours/static75.VMHours-1))
}
