// webautoscale reproduces the paper's web (Wikipedia) scenario in a
// CI-friendly reduction — scale 0.1, one simulated day — and shows how the
// adaptive mechanism rides the diurnal load curve while static fleets
// either reject requests or idle.
package main

import (
	"flag"
	"fmt"

	"vmprov"
)

func main() {
	scale := flag.Float64("scale", 0.1, "load scale (1 = the paper's ≈500M requests/week)")
	days := flag.Float64("days", 1, "simulated days")
	flag.Parse()

	sc := vmprov.Web(*scale)
	sc.Horizon = *days * vmprov.Day

	adaptive, series := vmprov.RunOnce(sc, vmprov.Adaptive(), 7, vmprov.RunOptions{TrackSeries: true})
	peak, _ := vmprov.RunOnce(sc, vmprov.Static(15), 7, vmprov.RunOptions{})  // 150 at paper scale
	small, _ := vmprov.RunOnce(sc, vmprov.Static(10), 7, vmprov.RunOptions{}) // 100 at paper scale

	fmt.Print(vmprov.FigureTable(
		fmt.Sprintf("web scenario, scale %g, %g day(s) — paper Figure 5 analogue", *scale, *days),
		[]vmprov.Result{adaptive, small, peak}))

	fmt.Println("\nadaptive fleet size over the day (hourly):")
	nextHour := 0.0
	for _, p := range series {
		if p.T >= nextHour {
			fmt.Printf("  %5.1f h: %s\n", p.T/3600, bar(p.N))
			nextHour += 3600
		}
	}
}

// bar renders a small ASCII bar for n instances.
func bar(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return fmt.Sprintf("%3d %s", n, b)
}
