// Quickstart: run the paper's scientific scenario once under the adaptive
// provisioning policy and print the Section V-A metrics.
package main

import (
	"fmt"

	"vmprov"
)

func main() {
	// The scientific scenario at scale 1 is the paper's exact setup:
	// one simulated day of the Bag-of-Tasks workload (≈8286 requests),
	// QoS Ts = 700 s, zero rejection target, 80% utilization floor.
	scenario := vmprov.Sci(1)

	result, _ := vmprov.RunOnce(scenario, vmprov.Adaptive(), 42, vmprov.RunOptions{})
	fmt.Println("adaptive :", result)

	// Compare with the paper's peak-sized static baseline.
	static, _ := vmprov.RunOnce(scenario, vmprov.Static(75), 42, vmprov.RunOptions{})
	fmt.Println("static-75:", static)

	fmt.Printf("\nadaptive uses %.0f%% of the static fleet's VM hours at equal QoS\n",
		100*result.VMHours/static.VMHours)
}
