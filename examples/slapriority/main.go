// slapriority exercises the SLA extension (the paper's future work,
// Section VII): two request classes — paying "gold" traffic and
// best-effort "standard" traffic — compete for a deliberately scarce
// fleet. With priority admission, gold requests queue ahead of standard
// ones and displace waiting standard requests under intense competition,
// so the gold class keeps its QoS while the standard class absorbs the
// rejections.
package main

import (
	"fmt"

	"vmprov"
)

func run(preempt bool) []vmprov.ClassResult {
	cfg := vmprov.Config{
		QoS:                vmprov.QoS{Ts: 2.5, MaxRejection: 0, RejectionTol: 1e-3, MinUtilization: 0.8},
		NominalTr:          1,
		MaxVMs:             200,
		PreemptLowPriority: preempt,
	}
	d := vmprov.NewDeployment(cfg, nil)
	d.UseStatic(10) // scarce: offered load will exceed capacity

	s := d.Sim
	r := vmprov.NewRNG(11)
	const horizon = 4 * 3600
	var id uint64
	pump := func(rate float64, class int) {
		var next func()
		next = func() {
			if s.Now() >= horizon {
				return
			}
			id++
			d.Provisioner.Submit(vmprov.Request{
				ID:      id,
				Arrival: s.Now(),
				Service: 1 + 0.1*r.Float64(),
				Class:   class,
			})
			s.Schedule(r.ExpFloat64()/rate, next)
		}
		s.Schedule(r.ExpFloat64()/rate, next)
	}
	pump(4, 1)  // gold: 4 req/s
	pump(12, 0) // standard: 12 req/s — total 16 Erlangs on 10 servers

	d.Finish("sla", horizon)
	return d.ClassResults()
}

func main() {
	// The provider's agreement: gold pays well but commits to ≤1%
	// rejection; standard is best-effort revenue with a loose cap.
	agreement := vmprov.SLAAgreement{Commitments: []vmprov.SLACommitment{
		{Class: 1, MaxMeanResponse: 2.5, MaxRejectionRate: 0.01,
			RevenuePerRequest: 0.05, PenaltyPerBreach: 2000},
		{Class: 0, MaxMeanResponse: 2.5, MaxRejectionRate: 0.60,
			RevenuePerRequest: 0.005, PenaltyPerBreach: 200},
	}}

	for _, mode := range []struct {
		name    string
		preempt bool
	}{
		{"without priority admission", false},
		{"with priority admission (gold displaces waiting standard)", true},
	} {
		fmt.Printf("%s:\n", mode.name)
		classes := run(mode.preempt)
		for _, c := range classes {
			fmt.Printf("  class %d: accepted=%d rejected=%d (%.1f%%) displaced=%d resp=%.3fs\n",
				c.Class, c.Accepted, c.Rejected, 100*c.RejectionRate, c.Displaced, c.MeanResponse)
		}
		fmt.Printf("  %s", vmprov.EvaluateSLA(agreement, classes))
	}
}
