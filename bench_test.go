// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), plus ablations over the design choices called
// out in DESIGN.md and microbenchmarks of the substrates.
//
// Figure benches run reduced-scale scenarios so a full -bench=. sweep
// stays in CI budgets; EXPERIMENTS.md records the larger reproduction
// runs executed with cmd/vmprovsim. Custom metrics reported per bench:
// utilization, rejection, VM hours of the adaptive policy, so regressions
// in reproduction quality show up as metric drift, not just time drift.
package vmprov

import (
	"fmt"
	"testing"

	"vmprov/internal/experiment"
	"vmprov/internal/provision"
	"vmprov/internal/queueing"
	"vmprov/internal/sim"
	"vmprov/internal/stats"
	"vmprov/internal/workload"
)

// reportAdaptive attaches the adaptive row's headline numbers to the
// bench output.
func reportAdaptive(b *testing.B, r Result) {
	b.ReportMetric(r.Utilization, "util")
	b.ReportMetric(r.RejectionRate, "rej")
	b.ReportMetric(r.VMHours, "VMh")
	b.ReportMetric(float64(r.MaxInstances), "maxVMs")
}

// BenchmarkTableIIWebRates regenerates the web workload's per-weekday
// rate envelope (Table II drives Equation 2): one pass evaluates the mean
// rate across a full week at one-minute resolution.
func BenchmarkTableIIWebRates(b *testing.B) {
	src := NewWebWorkload(1)
	var sum float64
	for i := 0; i < b.N; i++ {
		for t := 0.0; t < Week; t += 60 {
			sum += src.MeanRate(t)
		}
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
	b.ReportMetric(src.MeanRate(2*Day+12*3600), "peak_req/s") // Wednesday noon: 1200
}

// BenchmarkFig3WebTrace regenerates Figure 3: the realized web arrival
// series over one simulated day (scale 0.1), binned per minute.
func BenchmarkFig3WebTrace(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		bins := experiment.ObservedRateSeries(NewWebWorkload(0.1), uint64(i), Day, 60)
		for _, v := range bins {
			total += v
		}
	}
	b.ReportMetric(total/float64(b.N)/1440, "mean_req/s")
}

// BenchmarkFig4SciTrace regenerates Figure 4: the realized scientific
// arrival series over one simulated day at full scale, binned per minute.
func BenchmarkFig4SciTrace(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		bins := experiment.ObservedRateSeries(NewSciWorkload(1), uint64(i), Day, 60)
		for _, v := range bins {
			total += v
		}
	}
	b.ReportMetric(total*60/float64(b.N), "requests/day") // paper: 8286
}

// BenchmarkFig5Web regenerates Figure 5 (panels a–d) on the reduced web
// scenario: scale 0.1, one simulated day, adaptive vs scaled static
// fleets. The resulting table is logged (go test -bench Fig5 -v).
func BenchmarkFig5Web(b *testing.B) {
	b.ReportAllocs()
	sc := Web(0.1)
	sc.Horizon = Day
	var results []Result
	for i := 0; i < b.N; i++ {
		results = RunAll(sc, 1, uint64(i)+1, 0, RunOptions{})
	}
	b.Log("\n" + FigureTable("Figure 5 (web, scale 0.1, one day)", results))
	reportAdaptive(b, results[0])
}

// BenchmarkFig6Sci regenerates Figure 6 (panels a–d) at the paper's full
// scale: one simulated day of the BoT workload, adaptive vs
// Static-{15..75}.
func BenchmarkFig6Sci(b *testing.B) {
	b.ReportAllocs()
	sc := Sci(1)
	var results []Result
	for i := 0; i < b.N; i++ {
		results = RunAll(sc, 1, uint64(i)+1, 0, RunOptions{})
	}
	b.Log("\n" + FigureTable("Figure 6 (scientific, scale 1)", results))
	reportAdaptive(b, results[0])
	// Paper anchors: Static-45 rejects ≈31.7%, Static-75 utilization ≈42%.
	b.ReportMetric(results[3].RejectionRate, "static45_rej")
	b.ReportMetric(results[5].Utilization, "static75_util")
}

// --- Ablations over DESIGN.md §4/§5 design choices ---

// BenchmarkAblationRejectionTolerance sweeps the modeling tolerance on
// the zero-rejection target: tighter tolerance buys lower rejection at
// more VM hours.
func BenchmarkAblationRejectionTolerance(b *testing.B) {
	for _, tol := range []float64{1e-1, 1e-2, 1e-3, 1e-5} {
		b.Run(fmt.Sprintf("tol=%g", tol), func(b *testing.B) {
			sc := Sci(1)
			sc.Cfg.QoS.RejectionTol = tol
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, Adaptive(), uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// BenchmarkAblationUtilizationFloor sweeps the minimum-utilization
// threshold (paper: 0.8): lower floors grow the fleet and waste hours.
func BenchmarkAblationUtilizationFloor(b *testing.B) {
	for _, floor := range []float64{0.5, 0.65, 0.8, 0.9} {
		b.Run(fmt.Sprintf("floor=%.2f", floor), func(b *testing.B) {
			sc := Sci(1)
			sc.Cfg.QoS.MinUtilization = floor
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, Adaptive(), uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// BenchmarkAblationPredictionFactors removes the paper's deliberate
// overestimation (1.2× peak, 2.6× off-peak): without it the scientific
// workload's variability causes rejections.
func BenchmarkAblationPredictionFactors(b *testing.B) {
	cases := []struct {
		name      string
		peak, off float64
	}{
		{"paper_1.2_2.6", 1.2, 2.6},
		{"none_1.0_1.0", 1.0, 1.0},
		{"double_2.4_5.2", 2.4, 5.2},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sc := Sci(1)
			peak, off := c.peak, c.off
			sc.NewAnalyzer = func(src Source) Analyzer {
				a := &SciAnalyzer{Model: src.(*SciWorkload), PeakFactor: peak, OffPeakFactor: off}
				a.Horizon = sc.Horizon
				return a
			}
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, Adaptive(), uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// BenchmarkAblationBootDelay provisions VMs with non-zero readiness
// latency (the paper assumes instantaneous creation): alert-driven
// proactive scaling absorbs moderate delays.
func BenchmarkAblationBootDelay(b *testing.B) {
	for _, delay := range []float64{0, 60, 300} {
		b.Run(fmt.Sprintf("boot=%.0fs", delay), func(b *testing.B) {
			sc := Sci(1)
			sc.Cfg.BootDelay = delay
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, Adaptive(), uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// BenchmarkAblationHeterogeneousCapacity runs the paper's future-work
// extension: VMs with double service capacity halve the fleet at the same
// QoS.
func BenchmarkAblationHeterogeneousCapacity(b *testing.B) {
	for _, capFactor := range []float64{1, 2} {
		b.Run(fmt.Sprintf("capacity=%gx", capFactor), func(b *testing.B) {
			sc := Sci(1)
			sc.Cfg.VMSpec.Capacity = capFactor
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, Adaptive(), uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// BenchmarkAblationEmpiricalAnalyzers swaps the paper's model-based
// scientific analyzer for the model-free ones (future-work direction).
func BenchmarkAblationEmpiricalAnalyzers(b *testing.B) {
	analyzers := []struct {
		name string
		make func(sc Scenario, src Source) Analyzer
	}{
		{"paper-model", func(sc Scenario, src Source) Analyzer { return sc.NewAnalyzer(src) }},
		{"window", func(sc Scenario, src Source) Analyzer {
			return &WindowAnalyzer{Interval: 900, Windows: 4, Safety: 1.5, Horizon: sc.Horizon}
		}},
		{"ar2", func(sc Scenario, src Source) Analyzer {
			return &ARAnalyzer{Interval: 900, Order: 2, Fit: 16, Safety: 1.5, Horizon: sc.Horizon}
		}},
	}
	for _, a := range analyzers {
		b.Run(a.name, func(b *testing.B) {
			sc := Sci(1)
			pol := experiment.AdaptiveWithAnalyzer("Adaptive-"+a.name, a.make)
			var r Result
			for i := 0; i < b.N; i++ {
				r, _ = RunOnce(sc, pol, uint64(i)+1, RunOptions{})
			}
			reportAdaptive(b, r)
		})
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkSimEventThroughput measures raw kernel speed: schedule+fire of
// chained events.
func BenchmarkSimEventThroughput(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			s.Schedule(1, chain)
		}
	}
	b.ResetTimer()
	s.Schedule(1, chain)
	s.Run()
}

// BenchmarkSimHeapChurn measures the pending-set under width: 1k
// concurrent timers constantly rescheduled.
func BenchmarkSimHeapChurn(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	const width = 1024
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			s.Schedule(1+float64(fired%7), tick)
		}
	}
	b.ResetTimer()
	for i := 0; i < width; i++ {
		s.Schedule(float64(i%13)+1, tick)
	}
	s.Run()
}

// BenchmarkMM1KSolve measures one evaluation of the per-instance model.
func BenchmarkMM1KSolve(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		q := queueing.MM1K{Lambda: 7.8 + float64(i%10)/100, Mu: 9.5, K: 2}
		acc += q.ResponseTime() + q.Blocking()
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkAlgorithm1 measures one full sizing search at the web-peak
// operating point.
func BenchmarkAlgorithm1(b *testing.B) {
	in := provision.SizingInput{
		Lambda: 1200, Tm: 0.105, K: 2, Current: 55, MaxVMs: 1000,
		QoS: QoS{Ts: 0.25, RejectionTol: 1e-3, MinUtilization: 0.8},
	}
	var acc int
	for i := 0; i < b.N; i++ {
		in.Current = 1 + i%200
		acc += provision.Algorithm1(in)
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkWebGeneration measures workload generation alone (no serving):
// arrivals per second of wall clock.
func BenchmarkWebGeneration(b *testing.B) {
	b.ReportAllocs()
	var count int
	for i := 0; i < b.N; i++ {
		s := sim.New()
		src := workload.NewWeb(0.1)
		src.Start(s, stats.NewRNG(uint64(i)), func(workload.Request) { count++ })
		s.RunUntil(3600)
	}
	b.ReportMetric(float64(count)/float64(b.N), "req/run")
}

// BenchmarkEndToEndServing measures the full stack (generate, admit,
// serve, account) on a one-hour web slice.
func BenchmarkEndToEndServing(b *testing.B) {
	b.ReportAllocs()
	sc := Web(0.1)
	sc.Horizon = 3600
	var r Result
	for i := 0; i < b.N; i++ {
		r, _ = RunOnce(sc, Static(12), uint64(i), RunOptions{})
	}
	b.ReportMetric(float64(r.Accepted), "req/run")
}
