package vmprov

import (
	"vmprov/internal/cloud"
	"vmprov/internal/experiment"
	"vmprov/internal/fault"
	"vmprov/internal/provision"
	"vmprov/internal/workload"
)

// Declarative scenario & policy layer, re-exported so library users get
// the same serializable entry point as the CLI's -spec mode: scenarios
// and panels are data (JSON-marshalable specs resolved through
// registries), compiled into the runnable Scenario/Job forms.
type (
	// ScenarioSpec is the declarative, serializable form of a Scenario.
	ScenarioSpec = experiment.ScenarioSpec
	// PanelSpec is a declarative experiment panel: scenarios × policies
	// × replications at consecutive seeds.
	PanelSpec = experiment.PanelSpec
	// Panel is a compiled PanelSpec, ready to run over the sweep engine.
	Panel = experiment.Panel
	// PanelResult is one scenario's aggregated panel row set.
	PanelResult = experiment.PanelResult
	// PolicyBuilder builds a registered policy from its ":arg" suffix.
	PolicyBuilder = experiment.PolicyBuilder
	// WorkloadBuilder is the compiled form of a workload spec: fresh
	// per-replication sources plus the paired analyzer factory.
	WorkloadBuilder = workload.Builder
	// WorkloadConstructor builds a WorkloadBuilder from raw JSON params.
	WorkloadConstructor = workload.Constructor
	// WebWorkloadParams parameterize the "web" workload kind.
	WebWorkloadParams = workload.WebParams
	// SciWorkloadParams parameterize the "scientific" workload kind.
	SciWorkloadParams = workload.SciParams
	// ModulatedWorkloadParams parameterize the "modulated" (MMPP) kind.
	ModulatedWorkloadParams = workload.ModulatedParams
	// TraceWorkloadParams parameterize the "trace" (rate-replay) kind.
	TraceWorkloadParams = workload.TraceParams
	// MultiWorkloadParams parameterize the "multi" kind: an aggregate
	// arrival rate fanned out over client cohorts.
	MultiWorkloadParams = workload.MultiParams
	// TraceV2WorkloadParams parameterize the "tracev2" kind: bit-exact
	// replay of a recorded v2 arrival trace.
	TraceV2WorkloadParams = workload.TraceV2Params
	// ClientSpec declares one client cohort of a multi-client workload.
	ClientSpec = workload.ClientSpec
	// ArrivalSpec declares a client's arrival process (poisson,
	// gamma-cv, weibull, mmpp).
	ArrivalSpec = workload.ArrivalSpec
	// SizeSpec declares a client's service-size distribution.
	SizeSpec = workload.SizeSpec
	// PatternSpec shapes a client's rate over time (ramp, burst,
	// multi-period); the zero value is constant.
	PatternSpec = workload.PatternSpec
	// ClientInfo identifies one client cohort (name + SLO class).
	ClientInfo = workload.ClientInfo
	// FaultSpec declares injected IaaS faults (crashes, boot failures,
	// transient API errors) for a scenario; the zero value is the
	// paper's perfectly reliable cloud.
	FaultSpec = fault.Spec
	// RetryPolicy shapes the provisioner's self-healing retry/backoff
	// loop; the zero value selects the defaults.
	RetryPolicy = provision.RetryPolicy
	// BreakerPolicy shapes the per-zone circuit breaker used over
	// multi-zone providers; the zero value selects the defaults.
	BreakerPolicy = provision.BreakerPolicy
	// ShedPolicy enables degraded-mode admission shedding of the lowest
	// SLO classes; the zero value disables it.
	ShedPolicy = provision.ShedPolicy
	// DomainSpec declares correlated failure domains (zone outages, API
	// brownouts, crash storms); the zero value disables them.
	DomainSpec = fault.DomainSpec
	// ChaosTier is one rung of the chaos panel's fault-intensity ladder.
	ChaosTier = experiment.ChaosTier
	// Mode selects how replications execute: exact discrete-event
	// simulation, or hybrid analytical fast-forward between scaling
	// decisions.
	Mode = experiment.Mode
)

// Simulation modes. The empty Mode is ModeExact.
const (
	// ModeExact runs pure discrete-event simulation.
	ModeExact = experiment.ModeExact
	// ModeHybrid fast-forwards quiescent windows through the closed-form
	// performance model, probing with exact windows on a calibration
	// schedule; results match exact runs within metrics.HybridTolerance.
	ModeHybrid = experiment.ModeHybrid
)

// StaticWildcard is the panel policy token ("static:*") expanding to a
// scenario's full static baseline ladder.
const StaticWildcard = experiment.StaticWildcard

// WebSpec returns the declarative form of the paper's web scenario;
// Web(scale) is exactly WebSpec(scale) compiled.
func WebSpec(scale float64) ScenarioSpec { return experiment.WebSpec(scale) }

// SciSpec returns the declarative form of the paper's scientific
// scenario; Sci(scale) is exactly SciSpec(scale) compiled.
func SciSpec(scale float64) ScenarioSpec { return experiment.SciSpec(scale) }

// PaperPanel returns the built-in panel spec of a registered scenario:
// the adaptive policy against the full static baseline ladder.
func PaperPanel(scenario string, scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.PaperPanel(scenario, scale, reps, seed)
}

// FaultPanel returns the built-in resilience panel: the web scenario
// under an MTTF sweep with boot failures, slow boots, and transient API
// errors, for the adaptive policy against the static ladder.
func FaultPanel(scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.FaultPanel(scale, reps, seed)
}

// MultiSpec returns the declarative form of the built-in multi-client
// web scenario: four client cohorts with distinct arrival processes,
// service-size distributions, SLO classes, and temporal patterns.
func MultiSpec(scale float64) ScenarioSpec { return experiment.MultiSpec(scale) }

// MultiClientPanel returns the built-in multi-client panel: the
// web-multi scenario, adaptive against the full static ladder.
func MultiClientPanel(scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.MultiClientPanel(scale, reps, seed)
}

// HybridPanel returns the built-in hybrid fast-forward panel: the web
// scenario in ModeHybrid, adaptive against the full static ladder.
func HybridPanel(scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.HybridPanel(scale, reps, seed)
}

// MPCPanel returns the built-in model-predictive panel: the web scenario
// with the mpc:600 policy against adaptive and the full static ladder.
func MPCPanel(scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.MPCPanel(scale, reps, seed)
}

// ChaosScenarioSpec returns the declarative form of the built-in chaos
// scenario: a three-class web workload on a three-zone federation with
// circuit breaking and degraded-mode shedding, under correlated zone
// outages, API brownouts, and crash storms.
func ChaosScenarioSpec(scale float64) ScenarioSpec { return experiment.ChaosSpec(scale) }

// ChaosPanel returns the built-in chaos panel: the chaos scenario swept
// up a fault-intensity ladder (brownout → outage → storm) under the
// adaptive policy.
func ChaosPanel(scale float64, reps int, seed uint64) (PanelSpec, error) {
	return experiment.ChaosPanel(scale, reps, seed)
}

// ChaosTiers returns the chaos panel's fault-intensity ladder.
func ChaosTiers() []ChaosTier { return experiment.ChaosTiers() }

// CheckChaosInvariants verifies the machine-checked invariants of one
// chaos replication (request conservation, range checks, bounded heal
// time, shed ordering); it returns the first violation, or nil.
func CheckChaosInvariants(res Result, horizon float64) error {
	return experiment.CheckChaosInvariants(res, horizon)
}

// ChaosHealBound is the chaos invariant's bound on post-disruption heal
// time, in simulated seconds.
const ChaosHealBound = experiment.ChaosHealBound

// ParsePanelSpec strictly decodes a JSON panel spec (unknown fields are
// errors).
func ParsePanelSpec(data []byte) (PanelSpec, error) {
	return experiment.ParsePanelSpec(data)
}

// RegisterScenario adds a named scenario spec builder to the scenario
// registry — the extension point for third-party scenarios.
func RegisterScenario(name string, defaultScale float64, build func(scale float64) ScenarioSpec) {
	experiment.RegisterScenario(name, defaultScale, build)
}

// ScenarioNames lists the registered scenario names.
func ScenarioNames() []string { return experiment.ScenarioNames() }

// BuildScenarioSpec resolves a registered scenario by name at the given
// scale (0 = the scenario's default); unknown names list the registry.
func BuildScenarioSpec(name string, scale float64) (ScenarioSpec, error) {
	return experiment.BuildScenarioSpec(name, scale)
}

// RegisterPolicy adds a policy builder to the policy registry — the
// extension point for third-party provisioning policies.
func RegisterPolicy(name, usage string, build PolicyBuilder) {
	experiment.RegisterPolicy(name, usage, build)
}

// PolicyNames lists the registered policy usage forms.
func PolicyNames() []string { return experiment.PolicyNames() }

// ResolvePolicy resolves "adaptive", "static:75", "adaptive:window", …
// through the policy registry.
func ResolvePolicy(spec string) (Policy, error) { return experiment.ResolvePolicy(spec) }

// RegisterWorkload adds a workload kind to the workload registry — the
// extension point for third-party workload models (see DESIGN.md §7).
func RegisterWorkload(name string, ctor WorkloadConstructor) { workload.Register(name, ctor) }

// WorkloadNames lists the registered workload kind names.
func WorkloadNames() []string { return workload.Registered() }

// FigureCaption builds the standard caption for one scenario's panel
// table (the CLI's -all / -spec table headings).
func FigureCaption(panelName string, sc Scenario, reps int) string {
	return experiment.FigureCaption(panelName, sc, reps)
}

// ParsePlacement resolves a placement policy by name ("least-loaded",
// "first-fit", "round-robin"); the empty string is the paper's default.
func ParsePlacement(name string) (Placement, error) { return cloud.ParsePlacement(name) }

// PlacementNames lists the resolvable placement policy names.
func PlacementNames() []string { return cloud.PlacementNames() }
