# CI entry points for the vmprov reproduction. `make ci` is the gate a PR
# must pass: static checks, the full test suite with the race detector,
# the kernel fuzz targets in short mode, and bench smoke runs that
# regenerate BENCH_kernel.json and exercise the sweep benchmark path so
# kernel and panel throughput are tracked per PR.

GO        ?= go
FUZZTIME  ?= 10s
BENCHOUT  ?= BENCH_kernel.json
SWEEPOUT  ?= BENCH_sweep.json
SWEEPTMP  ?= /tmp/BENCH_sweep_fresh.json
SPECTMP   ?= /tmp/vmprov_spec_smoke.json
FFOUT     ?= BENCH_ff.json
FFTMP     ?= /tmp/BENCH_ff_fresh.json
MPCOUT    ?= BENCH_mpc.json
MPCTMP    ?= /tmp/BENCH_mpc_fresh.json
CHAOSOUT  ?= BENCH_chaos.json
CHAOSTMP  ?= /tmp/BENCH_chaos_fresh.json

.PHONY: ci fmt vet lint lint-baseline build test race sweep-race fault-smoke chaos-smoke fuzz bench-smoke sweep-smoke spec-roundtrip ff-smoke snapshot-smoke bench bench-sweep bench-compare bench-ff bench-mpc bench-chaos golden

ci: fmt vet lint build race sweep-race fault-smoke chaos-smoke fuzz bench-smoke sweep-smoke spec-roundtrip ff-smoke snapshot-smoke

# gofmt cleanliness gate: fail (and list the files) if any tracked Go
# source is not gofmt-formatted.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# vmprovlint v2: the project's determinism and correctness multichecker
# — the five v1 per-package passes (simclock, seededrand, maporder,
# errcmp, hotclosure), the four v2 whole-program invariant passes
# (snapshotfield, splitkey, specstrict, registry), and the lite
# nilness/shadow/copylocks stock passes. One gate over the whole tree;
# `make ci` fails on any finding that is neither suppressed in source
# (`//vmprov:allow <analyzer> -- <reason>`) nor recorded in the
# committed baseline. SARIF output: $(GO) run ./cmd/vmprovlint -sarif ./...
LINTBASE ?= lint_baseline.json

lint:
	$(GO) run ./cmd/vmprovlint -baseline $(LINTBASE) ./...

# Re-pin the committed baseline to the tree's current findings. Only for
# adopting a new analyzer with pre-existing debt — never to silence a
# finding your change introduced.
lint-baseline:
	$(GO) run ./cmd/vmprovlint -write-baseline $(LINTBASE) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sweep engine's concurrency properties under the race detector:
# pooled workers, result placement, and the serialized completion hook.
# The TestSweepFault* cases put a fault-enabled panel through the same
# concurrent machinery.
sweep-race:
	$(GO) test -race -count=1 ./internal/experiment -run 'TestSweep|TestRunContext|TestRunParallel'

# Fault-injection smoke: a short fault panel sweeps under the race
# detector (TestSweepFault*), the self-healing provisioner's fault
# tests run under -race, and the committed fault panel runs end to end
# through -spec.
fault-smoke:
	$(GO) test -race -count=1 ./internal/experiment -run 'TestSweepFault'
	$(GO) test -race -count=1 ./internal/provision -run 'TestRetry|TestCrash|TestBootFailure|TestStaleBoot|TestTransientRelease|TestGracefulDegradation|TestReactivated|TestCeiling'
	$(GO) run ./cmd/vmprovsim -spec examples/specs/web_fault_panel.json > /dev/null

# Chaos smoke: the correlated failure-domain suite — breaker, shed, and
# backoff unit tests plus the chaos panel's determinism, invariant, and
# mid-outage snapshot properties — under the race detector, then a short
# -chaos run whose per-replication invariant checks gate the process.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/provision -run 'TestBreaker|TestShed|TestAllZonesOpen|TestRetryBackoff|TestRetryPolicyValidate|TestBreakerAndShedPolicyValidate'
	$(GO) test -race -count=1 ./internal/experiment -run 'TestChaos|TestSweepChaos'
	$(GO) run ./cmd/vmprovsim -chaos -chaosscale 0.02 -chaosreps 1 -chaoshorizon 3600 > /dev/null

# Short fuzzing of the kernel's heap/arena against the reference
# scheduler, the fault-schedule determinism fuzzer, and the strict v2
# trace decoder (decode/re-encode round-trip). The seed corpora also run
# on every plain `go test`.
fuzz:
	$(GO) test ./internal/sim -run FuzzSimHeap -fuzz FuzzSimHeap -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment -run FuzzFaultSchedule -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment -run FuzzChaosSchedule -fuzz FuzzChaosSchedule -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment -run FuzzSnapshotRestore -fuzz FuzzSnapshotRestore -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run FuzzTraceV2Decode -fuzz FuzzTraceV2Decode -fuzztime $(FUZZTIME)

# Regenerate the kernel throughput record (web scenario, scales 0.1 and
# 1.0, one simulated hour each).
bench-smoke:
	$(GO) run ./cmd/vmprovsim -benchkernel $(BENCHOUT)

# Exercise the sweep benchmark end to end at a tiny panel size; the
# report goes to a scratch path so the committed record is untouched.
# Also runs the declarative-spec test suite (spec/panel/policy-registry
# compilation and the spec-vs-RunAll equivalence property).
sweep-smoke:
	$(GO) run ./cmd/vmprovsim -benchsweep $(SWEEPTMP) -sweephorizon 1800 -sweepreps 1 -sweeptries 1
	$(GO) test -count=1 ./internal/experiment -run 'TestSpec|TestPanel|TestPaperPanel|TestResolve|TestGoldenSpec|TestScenarioSpec'

# Spec round-trip gate: the committed golden panel files must equal a
# fresh -dumpspec, reload, and compile (TestGoldenSpecFiles), the
# committed golden trace must equal a fresh -record (TestGoldenTraceFile),
# a dumped panel must run end to end through -spec, and the committed
# multi-client panel must run with its per-client breakdown.
spec-roundtrip:
	$(GO) test -count=1 ./internal/experiment -run 'TestGoldenSpecFiles|TestGoldenTraceFile|TestPaperPanelRoundTrip'
	$(GO) run ./cmd/vmprovsim -dumpspec scientific -scale 0.2 -reps 1 > $(SPECTMP)
	$(GO) run ./cmd/vmprovsim -spec $(SPECTMP) > /dev/null
	$(GO) run ./cmd/vmprovsim -spec examples/specs/web_multiclient_panel.json > /dev/null

# Hybrid fast-forward smoke: the hybrid engine's unit and equivalence
# tests (accuracy within metrics.HybridTolerance, determinism across
# worker counts, bit-exact -mode=exact), then a reduced -benchff run —
# which itself fails if any policy's hybrid aggregate leaves the
# declared tolerance. The report goes to a scratch path; the committed
# BENCH_ff.json is regenerated by bench-ff.
ff-smoke:
	$(GO) test -count=1 ./internal/fluid ./internal/experiment -run 'TestEngine|TestHybrid|TestMode'
	$(GO) run ./cmd/vmprovsim -benchff $(FFTMP) -ffreps 1

# Snapshot/restore smoke: the bit-identity property suite (exact +
# hybrid + fault-enabled + MPC, nested stacks, checkpoint forks, worker
# counts 1/4/8 with pooled contexts) under the race detector, the
# federation snapshot tests, and a reduced -benchmpc run — which itself
# fails if the MPC policy loses to every baseline on its own objective.
snapshot-smoke:
	$(GO) test -race -count=1 ./internal/experiment -run 'TestSnapshot|TestCheckpoint|TestMPC'
	$(GO) test -race -count=1 ./internal/cloud -run 'TestFederation'
	$(GO) run ./cmd/vmprovsim -benchmpc $(MPCTMP) -mpcscale 0.02 -mpcreps 1

# Full benchmark sweep with allocation stats (slow; not part of ci).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the committed sweep benchmark record at full panel size
# (web scale 0.1, 6 h horizon, 10 reps; slow).
bench-sweep:
	$(GO) run ./cmd/vmprovsim -benchsweep $(SWEEPOUT) -sweepbaseline BENCH_sweep_prechange.json

# Guard against regressions on every committed benchmark trajectory:
# regenerate each report fresh and diff it against the committed record
# with benchdiff (which auto-detects the sweep / ff / mpc / chaos
# formats) — sweep gates replication throughput, ff gates the hybrid
# speedup and accuracy contract, mpc gates each policy's cost + QoS
# objective, chaos gates per-tier availability and zone MTTR.
bench-compare:
	$(GO) run ./cmd/vmprovsim -benchsweep $(SWEEPTMP) -sweepbaseline BENCH_sweep_prechange.json
	$(GO) run ./cmd/benchdiff -old $(SWEEPOUT) -new $(SWEEPTMP) -tolerance 0.20
	$(GO) run ./cmd/vmprovsim -benchff $(FFTMP)
	$(GO) run ./cmd/benchdiff -old $(FFOUT) -new $(FFTMP) -tolerance 0.20
	$(GO) run ./cmd/vmprovsim -benchmpc $(MPCTMP)
	$(GO) run ./cmd/benchdiff -old $(MPCOUT) -new $(MPCTMP) -tolerance 0.20
	$(GO) run ./cmd/vmprovsim -benchchaos $(CHAOSTMP)
	$(GO) run ./cmd/benchdiff -old $(CHAOSOUT) -new $(CHAOSTMP) -tolerance 0.20

# Regenerate the committed hybrid fast-forward record: the 6-hour web
# panel, exact vs hybrid, 3 reps per policy.
bench-ff:
	$(GO) run ./cmd/vmprovsim -benchff $(FFOUT)

# Regenerate the committed model-predictive record: the 6-hour web-mpc
# panel (mpc:600 vs adaptive vs the static ladder), 3 reps per policy.
bench-mpc:
	$(GO) run ./cmd/vmprovsim -benchmpc $(MPCOUT)

# Regenerate the committed chaos resilience record: the 2-hour web-chaos
# panel up the full fault-intensity ladder, 3 reps per tier.
bench-chaos:
	$(GO) run ./cmd/vmprovsim -benchchaos $(CHAOSOUT)

# Re-pin the kernel golden file after a DELIBERATE semantic change to
# event ordering or RNG stream layout. Never run to silence a failure.
golden:
	$(GO) test ./internal/experiment -run TestKernelGolden -update-kernel-golden
