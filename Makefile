# CI entry points for the vmprov reproduction. `make ci` is the gate a PR
# must pass: static checks, the full test suite with the race detector,
# the kernel fuzz targets in short mode, and a bench smoke run that
# regenerates BENCH_kernel.json so kernel throughput is tracked per PR.

GO        ?= go
FUZZTIME  ?= 10s
BENCHOUT  ?= BENCH_kernel.json

.PHONY: ci vet build test race fuzz bench-smoke bench golden

ci: vet build race fuzz bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing of the kernel's heap/arena against the reference
# scheduler. The seed corpus also runs on every plain `go test`.
fuzz:
	$(GO) test ./internal/sim -run FuzzSimHeap -fuzz FuzzSimHeap -fuzztime $(FUZZTIME)

# Regenerate the kernel throughput record (web scenario, scales 0.1 and
# 1.0, one simulated hour each).
bench-smoke:
	$(GO) run ./cmd/vmprovsim -benchkernel $(BENCHOUT)

# Full benchmark sweep with allocation stats (slow; not part of ci).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Re-pin the kernel golden file after a DELIBERATE semantic change to
# event ordering or RNG stream layout. Never run to silence a failure.
golden:
	$(GO) test ./internal/experiment -run TestKernelGolden -update-kernel-golden
