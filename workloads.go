package vmprov

import "vmprov/internal/workload"

// Workload models and analyzers, re-exported for custom deployments.
type (
	// WebWorkload is the paper's Wikipedia-derived web workload.
	WebWorkload = workload.Web
	// SciWorkload is the paper's Bag-of-Tasks scientific workload.
	SciWorkload = workload.Scientific
	// WebAnalyzer is the paper's six-period web-rate predictor.
	WebAnalyzer = workload.WebAnalyzer
	// SciAnalyzer is the paper's mode-based BoT-rate predictor.
	SciAnalyzer = workload.SciAnalyzer
	// PoissonSource is a stationary Poisson arrival process.
	PoissonSource = workload.PoissonSource
	// StepSource is a piecewise-constant-rate Poisson process.
	StepSource = workload.StepSource
	// TraceSource replays a fixed request trace.
	TraceSource = workload.TraceSource
	// OracleAnalyzer alerts with the exact model rate at given times.
	OracleAnalyzer = workload.OracleAnalyzer
	// WindowAnalyzer predicts from recent observed window rates.
	WindowAnalyzer = workload.WindowAnalyzer
	// ARAnalyzer predicts with a least-squares AR(p) model — the
	// ARMAX-style future-work direction of the paper.
	ARAnalyzer = workload.ARAnalyzer
	// MMPPSource is a two-state Markov-modulated Poisson process for
	// burstiness studies.
	MMPPSource = workload.MMPPSource
	// SinusoidSource is a thinning-generated non-homogeneous Poisson
	// process with a sinusoidal rate.
	SinusoidSource = workload.SinusoidSource
	// RateTraceSource replays a measured piecewise-linear rate curve as
	// a non-homogeneous Poisson process.
	RateTraceSource = workload.RateTraceSource
	// DayRate holds one weekday's rate bounds (Table II row).
	DayRate = workload.DayRate
)

// NewWebWorkload returns the paper's web workload at the given scale.
func NewWebWorkload(scale float64) *WebWorkload { return workload.NewWeb(scale) }

// NewSciWorkload returns the paper's scientific workload at the given
// scale.
func NewSciWorkload(scale float64) *SciWorkload { return workload.NewScientific(scale) }

// Day and Week are the scenario horizons in seconds.
const (
	Day  = workload.Day
	Week = workload.Week
)
